//! Life-long prediction cache for computation costs.
//!
//! The search's hot loop asks the computation cost model for the cost of a
//! *device's current table set* over and over; small changes to the
//! column-wise plan or the `max_dim` constraint barely change those sets,
//! so the paper memoizes predictions in a "life-long hash map" and reports
//! > 95% hit rates (Table 3). This cache is keyed by an order-insensitive
//! > fingerprint of the table set and tracks hit statistics.
//!
//! Two properties matter for the parallel search runtime:
//!
//! * the cache is **sharded** into a power-of-two number of mutex-guarded
//!   segments selected by key bits, so concurrent search threads rarely
//!   contend on the same lock; hit/miss statistics are kept per shard and
//!   summed on read, so global accounting survives sharding;
//! * the set fingerprint is built by **commutative addition** of per-table
//!   hashes, which makes it incrementally updatable: [`TableSetKey`] adds
//!   or removes one table in O(1), so the greedy allocator never rehashes
//!   a device's whole table set per probe.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use nshard_sim::TableProfile;

/// A pass-through [`Hasher`] for keys that are already avalanche-mixed
/// 64-bit fingerprints (every key in this crate goes through
/// [`avalanche`]). Re-hashing such keys with SipHash is pure overhead on
/// the search hot path, so maps keyed by them use the key bits directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct PreMixedHasher(u64);

impl Hasher for PreMixedHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (never hit for u64 keys): FNV-1a fold.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// [`BuildHasher`] for [`PreMixedHasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildPreMixed;

impl BuildHasher for BuildPreMixed {
    type Hasher = PreMixedHasher;

    fn build_hasher(&self) -> PreMixedHasher {
        PreMixedHasher::default()
    }
}

/// A hash map keyed by pre-mixed `u64` fingerprints (no re-hashing).
pub type PreMixedMap<V> = HashMap<u64, V, BuildPreMixed>;

/// Accumulator seed of the empty set.
const KEY_SEED: u64 = 0x517c_c1b7_2722_0a95;

/// Number of mutex-guarded cache segments. Must be a power of two; 16 is
/// plenty for the ≤ 64 search threads we expect while keeping the stats
/// sweep (one lock per shard) cheap.
const NUM_SHARDS: usize = 16;

/// FNV-style hash of one table profile (the per-table term of the set key).
/// Folds every cost-relevant field, including the communication share, so a
/// replica of a table never aliases the unreplicated shard in the cache.
fn table_hash(t: &TableProfile) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for bits in [
        u64::from(t.dim()),
        t.hash_size(),
        t.pooling_factor().to_bits(),
        t.unique_frac().to_bits(),
        t.zipf_alpha().to_bits(),
        t.comm_share().to_bits(),
    ] {
        h ^= bits;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Avalanche-mixed fingerprint of a single table profile — the key of the
/// per-table [`EncodingCache`]. Distinct from [`table_set_key`] of the
/// singleton set (which goes through the commutative accumulator).
pub fn table_key(t: &TableProfile) -> u64 {
    avalanche(table_hash(t))
}

/// Final avalanche mix applied on top of the commutative accumulator.
fn avalanche(acc: u64) -> u64 {
    let mut z = acc;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An order-insensitive fingerprint of a set of table profiles.
///
/// Built by hashing each table independently and combining with addition
/// (commutative), then mixing; two permutations of the same multiset always
/// collide on purpose, and distinct sets collide with probability ≈ 2⁻⁶⁴.
pub fn table_set_key(tables: &[TableProfile]) -> u64 {
    TableSetKey::of(tables).key()
}

/// An incrementally maintainable table-set fingerprint.
///
/// Holds the pre-avalanche commutative accumulator, so adding or removing
/// one table is O(1) (`wrapping_add` / `wrapping_sub` of that table's
/// hash) instead of rehashing the whole set. [`TableSetKey::key`] applies
/// the final avalanche and equals [`table_set_key`] of the same multiset.
///
/// # Example
///
/// ```
/// use nshard_cost::cache::{table_set_key, TableSetKey};
/// use nshard_sim::TableProfile;
///
/// let a = TableProfile::new(16, 1 << 18, 10.0, 0.5, 1.0);
/// let b = TableProfile::new(64, 1 << 20, 12.0, 0.3, 1.1);
/// let mut key = TableSetKey::empty();
/// key.add(&a);
/// key.add(&b);
/// assert_eq!(key.key(), table_set_key(&[a, b]));
/// key.remove(&a);
/// assert_eq!(key.key(), table_set_key(&[b]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableSetKey {
    acc: u64,
}

impl TableSetKey {
    /// The key of the empty set.
    pub fn empty() -> Self {
        Self { acc: KEY_SEED }
    }

    /// The key of a full multiset (O(n), the from-scratch construction).
    pub fn of(tables: &[TableProfile]) -> Self {
        let mut k = Self::empty();
        for t in tables {
            k.add(t);
        }
        k
    }

    /// Adds one table to the multiset, in place. O(1).
    pub fn add(&mut self, t: &TableProfile) {
        self.acc = self.acc.wrapping_add(table_hash(t));
    }

    /// Removes one table from the multiset, in place. O(1). The caller is
    /// responsible for only removing tables previously added.
    pub fn remove(&mut self, t: &TableProfile) {
        self.acc = self.acc.wrapping_sub(table_hash(t));
    }

    /// The key with `t` added, by value — the greedy allocator's probe
    /// pattern ("what if this table joined this device?").
    #[must_use]
    pub fn with(mut self, t: &TableProfile) -> Self {
        self.add(t);
        self
    }

    /// The final cache key (avalanche-mixed accumulator).
    pub fn key(self) -> u64 {
        avalanche(self.acc)
    }
}

impl Default for TableSetKey {
    fn default() -> Self {
        Self::empty()
    }
}

/// A hit/miss counter snapshot, summed across cache shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a model forward.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// The counter delta since an earlier snapshot (saturating).
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }

    /// Accumulates another delta into this one.
    pub fn absorb(&mut self, delta: &CacheStats) {
        self.hits += delta.hits;
        self.misses += delta.misses;
    }
}

/// A thread-safe memoization cache with hit-rate accounting, sharded into
/// [`NUM_SHARDS`] independently locked segments selected by key bits.
///
/// # Example
///
/// ```
/// use nshard_cost::PredictionCache;
///
/// let cache = PredictionCache::new();
/// let v1 = cache.get_or_insert_with(42, || 3.5);
/// let v2 = cache.get_or_insert_with(42, || unreachable!("cached"));
/// assert_eq!(v1, 3.5);
/// assert_eq!(v2, 3.5);
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// ```
#[derive(Debug)]
pub struct PredictionCache {
    shards: Vec<Mutex<Shard>>,
}

#[derive(Debug, Default)]
struct Shard {
    map: PreMixedMap<f64>,
    hits: u64,
    misses: u64,
}

impl Default for PredictionCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PredictionCache {
    /// Creates an empty cache with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(NUM_SHARDS)
    }

    /// Creates an empty cache with an explicit shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or not a power of two.
    pub fn with_shards(shards: usize) -> Self {
        assert!(
            shards > 0 && shards.is_power_of_two(),
            "shard count must be a nonzero power of two, got {shards}"
        );
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    /// Number of shards (always a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // Keys are avalanche-mixed, so the low bits are uniform.
        &self.shards[(key as usize) & (self.shards.len() - 1)]
    }

    /// Looks up `key`, computing and inserting the value on a miss. The
    /// closure runs under the shard lock, so two threads racing on the same
    /// key produce exactly one miss and one hit.
    pub fn get_or_insert_with(&self, key: u64, compute: impl FnOnce() -> f64) -> f64 {
        let mut shard = self.shard(key).lock();
        if let Some(&v) = shard.map.get(&key) {
            shard.hits += 1;
            return v;
        }
        shard.misses += 1;
        let v = compute();
        shard.map.insert(key, v);
        v
    }

    /// Returns the cached value for `key`, counting a hit if present. A
    /// miss is *not* counted — batch callers pair this with
    /// [`PredictionCache::record_miss`] once they commit to computing.
    pub fn get_counted(&self, key: u64) -> Option<f64> {
        let mut shard = self.shard(key).lock();
        match shard.map.get(&key) {
            Some(&v) => {
                shard.hits += 1;
                Some(v)
            }
            None => None,
        }
    }

    /// Counts one hit against `key`'s shard without touching the map —
    /// used for in-batch duplicate keys, which the serial path would have
    /// answered from the cache.
    pub fn record_hit(&self, key: u64) {
        self.shard(key).lock().hits += 1;
    }

    /// Counts one miss against `key`'s shard without touching the map.
    pub fn record_miss(&self, key: u64) {
        self.shard(key).lock().misses += 1;
    }

    /// Inserts a computed value unless another thread got there first (the
    /// first value wins, keeping reads stable).
    pub fn insert_if_absent(&self, key: u64, value: f64) {
        self.shard(key).lock().map.entry(key).or_insert(value);
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().hits).sum()
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().misses).sum()
    }

    /// One coherent snapshot of the summed hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        let mut out = CacheStats::default();
        for s in &self.shards {
            let s = s.lock();
            out.hits += s.hits;
            out.misses += s.misses;
        }
        out
    }

    /// Hit rate in `[0, 1]`; 0 when the cache has not been queried.
    pub fn hit_rate(&self) -> f64 {
        self.stats().hit_rate()
    }

    /// Number of distinct entries stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().map.is_empty())
    }

    /// Clears entries and statistics.
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = s.lock();
            s.map.clear();
            s.hits = 0;
            s.misses = 0;
        }
    }

    /// Records a miss without storing an entry — used when caching is
    /// disabled (the "w/o caching" ablation) so hit rates report as 0%.
    pub fn count_miss(&self) {
        self.shards[0].lock().misses += 1;
    }

    /// Resets only the hit/miss statistics, keeping the entries (used
    /// between experiment phases so hit rates are attributable).
    pub fn reset_stats(&self) {
        for s in &self.shards {
            let mut s = s.lock();
            s.hits = 0;
            s.misses = 0;
        }
    }
}

/// Life-long cache of per-table *encoder outputs*.
///
/// The computation cost model is a DeepSets regressor: a shared encoder
/// maps each table to a fixed-width row, the rows of a device's table set
/// are summed, and a small head maps the sum to a cost. Encoder rows are
/// pure functions of one table — bit-identical whether computed alone or
/// inside any batch — so the search caches them life-long and rebuilds a
/// set's pooled representation by re-folding cached rows, skipping the
/// encoder (the bulk of the inference FLOPs) for every table it has seen
/// before. Keyed by [`table_key`]. Reads take a shared lock; inserting a
/// newly seen table takes the write lock.
#[derive(Debug, Default)]
pub struct EncodingCache {
    map: RwLock<PreMixedMap<Box<[f32]>>>,
}

impl EncodingCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `key`'s encoding is cached.
    pub fn contains(&self, key: u64) -> bool {
        self.map.read().contains_key(&key)
    }

    /// Inserts an encoding unless one is already present (the first value
    /// wins; every computed encoding for a key is bit-identical anyway).
    pub fn insert_if_absent(&self, key: u64, encoding: Box<[f32]>) {
        self.map.write().entry(key).or_insert(encoding);
    }

    /// Element-wise adds `key`'s cached encoding into `acc`, returning
    /// whether the key was present (on `false`, `acc` is untouched).
    ///
    /// # Panics
    ///
    /// Panics if the cached encoding's width differs from `acc.len()`.
    pub fn accumulate(&self, key: u64, acc: &mut [f32]) -> bool {
        let map = self.map.read();
        match map.get(&key) {
            Some(enc) => {
                assert_eq!(enc.len(), acc.len(), "encoding width mismatch");
                for (a, &e) in acc.iter_mut().zip(enc.iter()) {
                    *a += e;
                }
                true
            }
            None => false,
        }
    }

    /// Number of distinct table encodings stored.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache holds no encodings.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Drops every entry.
    pub fn clear(&self) {
        self.map.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(dim: u32, rows: u64) -> TableProfile {
        TableProfile::new(dim, rows, 10.0, 0.5, 1.0)
    }

    #[test]
    fn key_is_order_insensitive() {
        let a = [t(4, 100), t(8, 200), t(16, 300)];
        let b = [t(16, 300), t(4, 100), t(8, 200)];
        assert_eq!(table_set_key(&a), table_set_key(&b));
    }

    #[test]
    fn key_distinguishes_different_sets() {
        assert_ne!(table_set_key(&[t(4, 100)]), table_set_key(&[t(8, 100)]));
        assert_ne!(
            table_set_key(&[t(4, 100)]),
            table_set_key(&[t(4, 100), t(4, 100)])
        );
        assert_ne!(table_set_key(&[]), table_set_key(&[t(4, 100)]));
    }

    #[test]
    fn incremental_add_remove_matches_from_scratch() {
        let a = t(4, 100);
        let b = t(8, 200);
        let c = t(16, 300);
        let mut key = TableSetKey::empty();
        key.add(&a);
        key.add(&b);
        key.add(&c);
        assert_eq!(key.key(), table_set_key(&[a, b, c]));
        key.remove(&b);
        assert_eq!(key.key(), table_set_key(&[a, c]));
        assert_eq!(key.with(&b).key(), table_set_key(&[a, b, c]));
        key.remove(&a);
        key.remove(&c);
        assert_eq!(key, TableSetKey::empty());
        assert_eq!(key.key(), table_set_key(&[]));
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let cache = PredictionCache::new();
        assert_eq!(cache.hit_rate(), 0.0);
        cache.get_or_insert_with(1, || 1.0);
        cache.get_or_insert_with(1, || 2.0);
        cache.get_or_insert_with(2, || 3.0);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_value_wins() {
        let cache = PredictionCache::new();
        cache.get_or_insert_with(9, || 5.0);
        assert_eq!(cache.get_or_insert_with(9, || 99.0), 5.0);
    }

    #[test]
    fn batch_primitives_account_consistently() {
        let cache = PredictionCache::new();
        assert_eq!(cache.get_counted(7), None);
        cache.record_miss(7);
        cache.insert_if_absent(7, 1.5);
        cache.insert_if_absent(7, 9.9); // first value wins
        assert_eq!(cache.get_counted(7), Some(1.5));
        cache.record_hit(7);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_and_reset_stats() {
        let cache = PredictionCache::new();
        cache.get_or_insert_with(1, || 1.0);
        cache.get_or_insert_with(1, || 1.0);
        cache.reset_stats();
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn stats_sum_over_all_shards() {
        let cache = PredictionCache::with_shards(4);
        // Keys 0..16 cover every shard index at least once.
        for k in 0..16u64 {
            cache.get_or_insert_with(k, || k as f64);
            cache.get_or_insert_with(k, || unreachable!());
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 16);
        assert_eq!(stats.misses, 16);
        assert_eq!(stats.total(), 32);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 16);
    }

    #[test]
    fn stats_since_delta() {
        let a = CacheStats {
            hits: 10,
            misses: 5,
        };
        let b = CacheStats {
            hits: 14,
            misses: 6,
        };
        let d = b.since(&a);
        assert_eq!(d, CacheStats { hits: 4, misses: 1 });
        let mut acc = CacheStats::default();
        acc.absorb(&d);
        acc.absorb(&d);
        assert_eq!(acc.total(), 10);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_panics() {
        let _ = PredictionCache::with_shards(3);
    }

    #[test]
    fn cache_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PredictionCache>();
        assert_send_sync::<TableSetKey>();
        assert_send_sync::<EncodingCache>();
    }

    #[test]
    fn table_key_distinguishes_tables() {
        assert_eq!(table_key(&t(4, 100)), table_key(&t(4, 100)));
        assert_ne!(table_key(&t(4, 100)), table_key(&t(8, 100)));
        assert_ne!(table_key(&t(4, 100)), table_key(&t(4, 200)));
    }

    #[test]
    fn encoding_cache_accumulates_and_first_value_wins() {
        let cache = EncodingCache::new();
        assert!(cache.is_empty());
        assert!(!cache.contains(5));
        let mut acc = vec![1.0f32, 2.0];
        assert!(!cache.accumulate(5, &mut acc));
        assert_eq!(acc, [1.0, 2.0]);

        cache.insert_if_absent(5, vec![0.5, 0.25].into_boxed_slice());
        cache.insert_if_absent(5, vec![9.0, 9.0].into_boxed_slice());
        assert!(cache.contains(5));
        assert_eq!(cache.len(), 1);
        assert!(cache.accumulate(5, &mut acc));
        assert!(cache.accumulate(5, &mut acc));
        assert_eq!(acc, [2.0, 2.5]);

        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_hammer_keeps_stats_consistent() {
        // Many threads, overlapping keys, mixed scalar/batch primitives:
        // every lookup must be counted exactly once, so hits + misses
        // equals the number of calls regardless of interleaving.
        const THREADS: usize = 8;
        const OPS: u64 = 2_000;
        let cache = PredictionCache::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..OPS {
                        let key = avalanche((i % 64) ^ (t << 32));
                        match i % 3 {
                            0 => {
                                let _ = cache.get_or_insert_with(key, || key as f64);
                            }
                            1 => match cache.get_counted(key) {
                                Some(_) => {}
                                None => {
                                    cache.record_miss(key);
                                    cache.insert_if_absent(key, key as f64);
                                }
                            },
                            _ => {
                                let _ = cache.get_or_insert_with(key, || key as f64);
                            }
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.total(), THREADS as u64 * OPS);
        // 64 distinct keys per thread stripe.
        assert!(cache.len() <= THREADS * 64);
        assert!(stats.hits > stats.misses, "repeated keys should mostly hit");
    }

    proptest! {
        #[test]
        fn key_deterministic(dims in proptest::collection::vec(1u32..64, 0..8)) {
            let tables: Vec<TableProfile> = dims.iter().map(|&d| t(d * 4, 1000)).collect();
            prop_assert_eq!(table_set_key(&tables), table_set_key(&tables));
        }

        #[test]
        fn incremental_key_equals_from_scratch(
            dims in proptest::collection::vec(1u32..64, 0..10),
            remove_mask in 0u32..1024,
        ) {
            let tables: Vec<TableProfile> = dims
                .iter()
                .enumerate()
                .map(|(i, &d)| t(d * 4, 500 + i as u64 * 37))
                .collect();
            // Build incrementally, compare against the from-scratch key.
            let mut key = TableSetKey::empty();
            for tab in &tables {
                key.add(tab);
            }
            prop_assert_eq!(key.key(), table_set_key(&tables));
            // Remove a subset; the incremental key must equal the
            // from-scratch key of the remaining multiset.
            let mut remaining: Vec<TableProfile> = Vec::new();
            for (i, tab) in tables.iter().enumerate() {
                if remove_mask & (1 << i) != 0 {
                    key.remove(tab);
                } else {
                    remaining.push(*tab);
                }
            }
            prop_assert_eq!(key.key(), table_set_key(&remaining));
        }
    }
}
