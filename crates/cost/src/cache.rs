//! Life-long prediction cache for computation costs.
//!
//! The search's hot loop asks the computation cost model for the cost of a
//! *device's current table set* over and over; small changes to the
//! column-wise plan or the `max_dim` constraint barely change those sets,
//! so the paper memoizes predictions in a "life-long hash map" and reports
//! > 95% hit rates (Table 3). This cache is keyed by an order-insensitive
//! > fingerprint of the table set and tracks hit statistics.

use std::collections::HashMap;

use parking_lot::Mutex;

use nshard_sim::TableProfile;

/// An order-insensitive fingerprint of a set of table profiles.
///
/// Built by hashing each table independently and combining with addition
/// (commutative), then mixing; two permutations of the same multiset always
/// collide on purpose, and distinct sets collide with probability ≈ 2⁻⁶⁴.
pub fn table_set_key(tables: &[TableProfile]) -> u64 {
    let mut acc: u64 = 0x517c_c1b7_2722_0a95;
    for t in tables {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for bits in [
            u64::from(t.dim()),
            t.hash_size(),
            t.pooling_factor().to_bits(),
            t.unique_frac().to_bits(),
            t.zipf_alpha().to_bits(),
        ] {
            h ^= bits;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        acc = acc.wrapping_add(h);
    }
    // Final avalanche.
    let mut z = acc;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A thread-safe memoization cache with hit-rate accounting.
///
/// # Example
///
/// ```
/// use nshard_cost::PredictionCache;
///
/// let cache = PredictionCache::new();
/// let v1 = cache.get_or_insert_with(42, || 3.5);
/// let v2 = cache.get_or_insert_with(42, || unreachable!("cached"));
/// assert_eq!(v1, 3.5);
/// assert_eq!(v2, 3.5);
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// ```
#[derive(Debug, Default)]
pub struct PredictionCache {
    inner: Mutex<CacheInner>,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<u64, f64>,
    hits: u64,
    misses: u64,
}

impl PredictionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up `key`, computing and inserting the value on a miss.
    pub fn get_or_insert_with(&self, key: u64, compute: impl FnOnce() -> f64) -> f64 {
        let mut inner = self.inner.lock();
        if let Some(&v) = inner.map.get(&key) {
            inner.hits += 1;
            return v;
        }
        inner.misses += 1;
        let v = compute();
        inner.map.insert(key, v);
        v
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.inner.lock().hits
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> u64 {
        self.inner.lock().misses
    }

    /// Hit rate in `[0, 1]`; 0 when the cache has not been queried.
    pub fn hit_rate(&self) -> f64 {
        let inner = self.inner.lock();
        let total = inner.hits + inner.misses;
        if total == 0 {
            0.0
        } else {
            inner.hits as f64 / total as f64
        }
    }

    /// Number of distinct entries stored.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().map.is_empty()
    }

    /// Clears entries and statistics.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.hits = 0;
        inner.misses = 0;
    }

    /// Records a miss without storing an entry — used when caching is
    /// disabled (the "w/o caching" ablation) so hit rates report as 0%.
    pub fn count_miss(&self) {
        self.inner.lock().misses += 1;
    }

    /// Resets only the hit/miss statistics, keeping the entries (used
    /// between experiment phases so hit rates are attributable).
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock();
        inner.hits = 0;
        inner.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(dim: u32, rows: u64) -> TableProfile {
        TableProfile::new(dim, rows, 10.0, 0.5, 1.0)
    }

    #[test]
    fn key_is_order_insensitive() {
        let a = [t(4, 100), t(8, 200), t(16, 300)];
        let b = [t(16, 300), t(4, 100), t(8, 200)];
        assert_eq!(table_set_key(&a), table_set_key(&b));
    }

    #[test]
    fn key_distinguishes_different_sets() {
        assert_ne!(table_set_key(&[t(4, 100)]), table_set_key(&[t(8, 100)]));
        assert_ne!(
            table_set_key(&[t(4, 100)]),
            table_set_key(&[t(4, 100), t(4, 100)])
        );
        assert_ne!(table_set_key(&[]), table_set_key(&[t(4, 100)]));
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let cache = PredictionCache::new();
        assert_eq!(cache.hit_rate(), 0.0);
        cache.get_or_insert_with(1, || 1.0);
        cache.get_or_insert_with(1, || 2.0);
        cache.get_or_insert_with(2, || 3.0);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_value_wins() {
        let cache = PredictionCache::new();
        cache.get_or_insert_with(9, || 5.0);
        assert_eq!(cache.get_or_insert_with(9, || 99.0), 5.0);
    }

    #[test]
    fn clear_and_reset_stats() {
        let cache = PredictionCache::new();
        cache.get_or_insert_with(1, || 1.0);
        cache.get_or_insert_with(1, || 1.0);
        cache.reset_stats();
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cache_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PredictionCache>();
    }

    proptest! {
        #[test]
        fn key_deterministic(dims in proptest::collection::vec(1u32..64, 0..8)) {
            let tables: Vec<TableProfile> = dims.iter().map(|&d| t(d * 4, 1000)).collect();
            prop_assert_eq!(table_set_key(&tables), table_set_key(&tables));
        }
    }
}
