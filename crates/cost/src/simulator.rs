//! The pre-trained cost-model bundle and the sharding cost simulator.
//!
//! [`CostModelBundle`] packages the three pre-trained models (computation,
//! forward communication, backward communication) for one cluster setting.
//! [`CostSimulator`] wraps a bundle with the life-long prediction cache and
//! estimates the embedding cost of any sharding plan by summing the
//! predicted max computation, forward communication and backward
//! communication costs (§3.3) — no ground-truth (GPU) execution involved.

use std::cell::RefCell;

use serde::{Deserialize, Serialize};

use nshard_data::TablePool;
use nshard_nn::Matrix;
use nshard_sim::{CommParams, GpuSpec, KernelParams, TableProfile};

use crate::cache::{
    table_key, table_set_key, EncodingCache, PreMixedMap, PredictionCache, TableSetKey,
};
use crate::collect::{collect_comm_data, collect_compute_data, CollectConfig};
use crate::comm_model::CommCostModel;
use crate::compute::ComputeCostModel;
use crate::features::table_features;

/// Fraction of the combined forward+backward kernel cost attributable to
/// the forward pass (used to estimate all-to-all start skews at search
/// time; matches the simulator's default backward/forward ratio).
///
/// Public so observation pipelines (the continual-learning loop) can
/// derive forward-comm start timestamps from per-device compute
/// predictions exactly the way [`CostSimulator::estimate_plan`] does.
pub const FWD_FRACTION: f64 = 1.0 / 2.45;

/// Numeric path used for cost-model inference.
///
/// `F32` is the exact path: bit-identical to the scalar reference kernels
/// and to every pre-batching/pre-blocking engine. `Int8` runs forward
/// passes through per-layer symmetrically quantized weights
/// ([`nshard_nn::QuantizedMlp`]) with f32 accumulation — approximate but
/// faster; it is inference-only and gated by a cost-band conformance test.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum InferenceMode {
    /// Exact f32 inference (the default).
    #[default]
    F32,
    /// Int8 symmetric weight quantization with f32 accumulation.
    Int8,
}

/// Per-device heterogeneity scales applied **after** cost-model inference.
///
/// The pre-trained models (and their caches) always see the *baseline*
/// hardware: the feature schema is frozen at [`crate::TABLE_FEATURE_DIM`]
/// and checkpoints are shared across fleets. Heterogeneity is priced on
/// top of the raw predictions instead — a device of compute class `s`
/// multiplies its predicted kernel cost by `s`, and a device whose
/// effective all-to-all bandwidth is `b ×` baseline contributes its
/// communication dimension as `dim / b` (moving bytes at `b ×` bandwidth
/// looks exactly like moving `1/b ×` bytes at baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceScales {
    compute: Vec<f64>,
    bandwidth: Vec<f64>,
}

impl DeviceScales {
    /// Creates scales from per-device compute-time multipliers and
    /// effective bandwidth scales.
    ///
    /// # Panics
    ///
    /// Panics when the vectors' lengths differ, are empty, or any scale is
    /// not finite and positive.
    pub fn new(compute: Vec<f64>, bandwidth: Vec<f64>) -> Self {
        assert_eq!(
            compute.len(),
            bandwidth.len(),
            "compute and bandwidth scales must cover the same devices"
        );
        assert!(!compute.is_empty(), "device scales cannot be empty");
        for s in compute.iter().chain(&bandwidth) {
            assert!(
                s.is_finite() && *s > 0.0,
                "device scales must be finite and positive, got {s}"
            );
        }
        Self { compute, bandwidth }
    }

    /// Lowers a [`nshard_sim::DevicePool`] to inference scales. Returns
    /// `None` for a pool with baseline compute and a flat network — the
    /// caller should then use the unscaled (bit-exact legacy) path.
    pub fn from_pool(pool: &nshard_sim::DevicePool) -> Option<Self> {
        if pool.has_uniform_compute() && pool.has_uniform_bandwidth() {
            return None;
        }
        Some(Self::new(pool.compute_scales(), pool.bw_scales()))
    }

    /// Number of devices covered.
    pub fn len(&self) -> usize {
        self.compute.len()
    }

    /// Whether the scales are empty (never true for constructed scales).
    pub fn is_empty(&self) -> bool {
        self.compute.is_empty()
    }

    /// Compute-time multiplier of device `g`.
    pub fn compute_scale(&self, g: usize) -> f64 {
        self.compute[g]
    }

    /// Effective bandwidth scale of device `g`.
    pub fn bandwidth_scale(&self, g: usize) -> f64 {
        self.bandwidth[g]
    }
}

/// Training hyperparameters for all three cost models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainSettings {
    /// Training epochs (the paper uses 1000; the smooth simulator labels
    /// converge far faster).
    pub epochs: usize,
    /// Mini-batch size (paper: 512).
    pub batch_size: usize,
    /// Adam learning rate (paper: 0.001).
    pub learning_rate: f32,
    /// Worker threads for gradient computation; `0` = auto (the
    /// `NSHARD_THREADS` environment variable, then available parallelism).
    /// Trained models are bit-identical at any setting.
    pub threads: usize,
}

impl Default for TrainSettings {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 128,
            learning_rate: 1e-3,
            threads: 0,
        }
    }
}

impl TrainSettings {
    /// A reduced setting for tests and smoke runs.
    pub fn smoke() -> Self {
        Self {
            epochs: 10,
            batch_size: 64,
            learning_rate: 2e-3,
            threads: 0,
        }
    }
}

/// Quality report of a pre-training run (the numbers behind Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BundleReport {
    /// Held-out test MSE of the computation cost model (ms²).
    pub compute_test_mse: f32,
    /// Held-out test MSE of the forward communication model (ms²).
    pub fwd_comm_test_mse: f32,
    /// Held-out test MSE of the backward communication model (ms²).
    pub bwd_comm_test_mse: f32,
    /// Number of computation samples collected.
    pub compute_samples: usize,
    /// Number of communication samples collected.
    pub comm_samples: usize,
}

/// The three pre-trained neural cost models for one cluster setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModelBundle {
    compute: ComputeCostModel,
    comm_fwd: CommCostModel,
    comm_bwd: CommCostModel,
    num_devices: usize,
    batch_size: u32,
    report: BundleReport,
}

impl CostModelBundle {
    /// Pre-trains a bundle against the default RTX 2080 Ti cluster laws.
    ///
    /// This is the reproduction of the paper's middle row of Figure 6:
    /// generate synthetic inputs, micro-benchmark them, train the three
    /// models.
    pub fn pretrain(
        pool: &TablePool,
        num_devices: usize,
        collect: &CollectConfig,
        train: &TrainSettings,
        seed: u64,
    ) -> Self {
        Self::pretrain_with_spec(
            pool,
            num_devices,
            &GpuSpec::rtx_2080_ti(),
            collect,
            train,
            seed,
        )
    }

    /// Pre-trains a bundle against an explicit hardware spec (e.g.
    /// [`GpuSpec::datacenter`] for the production experiments).
    pub fn pretrain_with_spec(
        pool: &TablePool,
        num_devices: usize,
        spec: &GpuSpec,
        collect: &CollectConfig,
        train: &TrainSettings,
        seed: u64,
    ) -> Self {
        Self::pretrain_with_laws(
            pool,
            num_devices,
            spec.kernel(),
            spec.comm(),
            collect,
            train,
            seed,
        )
    }

    /// Pre-trains against explicit cost laws.
    pub fn pretrain_with_laws(
        pool: &TablePool,
        num_devices: usize,
        kernel: &KernelParams,
        comm: &CommParams,
        collect: &CollectConfig,
        train: &TrainSettings,
        seed: u64,
    ) -> Self {
        let compute_data = collect_compute_data(pool, kernel, collect, seed);
        let comm_data = collect_comm_data(pool, comm, num_devices, collect, seed ^ 0x1234);

        let mut compute = ComputeCostModel::new(seed);
        let compute_report = compute.train(&compute_data, train, seed ^ 0x1);

        let mut comm_fwd = CommCostModel::new(num_devices, seed ^ 0x2);
        let fwd_report = comm_fwd.train(&comm_data.forward, train, seed ^ 0x3);
        let mut comm_bwd = CommCostModel::new(num_devices, seed ^ 0x4);
        let bwd_report = comm_bwd.train(&comm_data.backward, train, seed ^ 0x5);

        Self {
            compute,
            comm_fwd,
            comm_bwd,
            num_devices,
            batch_size: collect.batch_size,
            report: BundleReport {
                compute_test_mse: compute_report.test_mse,
                fwd_comm_test_mse: fwd_report.test_mse,
                bwd_comm_test_mse: bwd_report.test_mse,
                compute_samples: collect.compute_samples,
                comm_samples: collect.comm_samples,
            },
        }
    }

    /// Builds a bundle from already-trained parts (used by tests and custom
    /// pipelines).
    pub fn from_parts(
        compute: ComputeCostModel,
        comm_fwd: CommCostModel,
        comm_bwd: CommCostModel,
        batch_size: u32,
        report: BundleReport,
    ) -> Self {
        let num_devices = comm_fwd.num_devices();
        assert_eq!(
            num_devices,
            comm_bwd.num_devices(),
            "forward/backward comm models disagree on device count"
        );
        Self {
            compute,
            comm_fwd,
            comm_bwd,
            num_devices,
            batch_size,
            report,
        }
    }

    /// The computation cost model.
    pub fn compute_model(&self) -> &ComputeCostModel {
        &self.compute
    }

    /// The forward communication cost model.
    pub fn comm_fwd_model(&self) -> &CommCostModel {
        &self.comm_fwd
    }

    /// The backward communication cost model.
    pub fn comm_bwd_model(&self) -> &CommCostModel {
        &self.comm_bwd
    }

    /// Device count this bundle was trained for.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Batch size of the training workload.
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// The pre-training quality report (Table 2 numbers).
    pub fn report(&self) -> &BundleReport {
        &self.report
    }
}

/// Estimated cost breakdown of one sharding plan, per §3.3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatedCost {
    /// Predicted fused-kernel cost per device (fwd+bwd), ms.
    pub compute_per_device: Vec<f64>,
    /// Max predicted computation cost, ms.
    pub max_compute_ms: f64,
    /// Predicted max forward all-to-all cost, ms.
    pub fwd_comm_ms: f64,
    /// Predicted max backward all-to-all cost, ms.
    pub bwd_comm_ms: f64,
}

impl EstimatedCost {
    /// The plan's estimated embedding cost: max computation + forward comm
    /// + backward comm (the objective `f(c, t)` of Equation 1).
    pub fn total_ms(&self) -> f64 {
        self.max_compute_ms + self.fwd_comm_ms + self.bwd_comm_ms
    }

    /// Per-device forward all-to-all start timestamps implied by the
    /// compute predictions (`compute × `[`FWD_FRACTION`]) — exactly the
    /// starts [`CostSimulator::estimate_plan`] feeds the forward comm
    /// model, so observation pipelines can rebuild its feature rows.
    pub fn fwd_comm_starts(&self) -> Vec<f64> {
        self.compute_per_device
            .iter()
            .map(|c| c * FWD_FRACTION)
            .collect()
    }
}

/// A sharding simulator: pre-trained bundle + life-long prediction cache.
///
/// # Example
///
/// ```no_run
/// use nshard_cost::{CollectConfig, CostModelBundle, CostSimulator, TrainSettings};
/// use nshard_data::TablePool;
/// use nshard_sim::TableProfile;
///
/// let pool = TablePool::synthetic_dlrm(856, 0);
/// let bundle = CostModelBundle::pretrain(
///     &pool, 2, &CollectConfig::smoke(), &TrainSettings::smoke(), 0,
/// );
/// let sim = CostSimulator::new(bundle);
/// let t = TableProfile::new(64, 1 << 20, 12.0, 0.3, 1.0);
/// let est = sim.estimate_plan(&[vec![t], vec![t]]);
/// println!("estimated cost {:.2} ms", est.total_ms());
/// ```
#[derive(Debug)]
pub struct CostSimulator {
    bundle: CostModelBundle,
    cache: PredictionCache,
    /// Life-long per-table encoder outputs (see [`EncodingCache`]); like
    /// the cost cache, per-simulator so numeric modes never mix.
    encodings: EncodingCache,
    cache_enabled: bool,
    batch_enabled: bool,
    inference_mode: InferenceMode,
}

/// Reusable per-thread buffers for the batched cache-resolution path:
/// the pooled encoding rows of the current miss batch, the flat per-table
/// fingerprint list, and the miss bookkeeping containers. Thread-local
/// because simulators are shared `&self` across search worker threads.
#[derive(Debug, Default)]
struct SimScratch {
    pooled: Matrix,
    table_keys: Vec<u64>,
    pending: PreMixedMap<usize>,
    miss_items: Vec<usize>,
    dups: Vec<(usize, usize)>,
}

thread_local! {
    static SIM_SCRATCH: RefCell<SimScratch> = RefCell::new(SimScratch::default());
}

impl CostSimulator {
    /// Wraps a bundle with a fresh cache.
    pub fn new(bundle: CostModelBundle) -> Self {
        Self {
            bundle,
            cache: PredictionCache::new(),
            encodings: EncodingCache::new(),
            cache_enabled: true,
            batch_enabled: true,
            inference_mode: InferenceMode::F32,
        }
    }

    /// Disables the prediction cache (the "w/o caching" ablation of
    /// Table 3).
    pub fn with_cache_disabled(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// Selects the numeric inference path. [`InferenceMode::Int8`] trades
    /// exactness for speed; cached predictions are per-simulator, so one
    /// simulator instance never mixes values from different modes (both
    /// caches are dropped here in case anything was already memoized).
    pub fn with_inference_mode(mut self, mode: InferenceMode) -> Self {
        if mode != self.inference_mode {
            self.cache.clear();
            self.encodings.clear();
        }
        self.inference_mode = mode;
        self
    }

    /// The active numeric inference path.
    pub fn inference_mode(&self) -> InferenceMode {
        self.inference_mode
    }

    /// Disables batched inference: every batch API falls back to one
    /// single-row model forward per query (the pre-batching engine, kept
    /// as a benchmark baseline). Results are bit-identical either way.
    pub fn with_batching_disabled(mut self) -> Self {
        self.batch_enabled = false;
        self
    }

    /// Whether batched inference is enabled.
    pub fn batching_enabled(&self) -> bool {
        self.batch_enabled
    }

    /// The underlying bundle.
    pub fn bundle(&self) -> &CostModelBundle {
        &self.bundle
    }

    /// The prediction cache (for hit-rate reporting).
    pub fn cache(&self) -> &PredictionCache {
        &self.cache
    }

    fn features(&self, tables: &[TableProfile]) -> Vec<Vec<f32>> {
        tables
            .iter()
            .map(|t| table_features(t, self.bundle.batch_size))
            .collect()
    }

    /// Feature rows of `tables` with `extra`'s row appended (the greedy
    /// probe's set layout).
    fn features_with_extra(
        &self,
        tables: &[TableProfile],
        extra: Option<&TableProfile>,
    ) -> Vec<Vec<f32>> {
        tables
            .iter()
            .chain(extra)
            .map(|t| table_features(t, self.bundle.batch_size))
            .collect()
    }

    /// Runs the compute model over many feature sets, batched or one by
    /// one depending on the ablation toggle. Identical bits either way.
    fn predict_compute_sets(&self, sets: &[Vec<Vec<f32>>]) -> Vec<f64> {
        if self.batch_enabled {
            self.bundle
                .compute
                .predict_batch_with_mode(sets, self.inference_mode)
        } else {
            sets.iter()
                .map(|s| {
                    self.bundle
                        .compute
                        .predict_with_mode(s, self.inference_mode)
                })
                .collect()
        }
    }

    /// Resolves many keyed compute-cost queries against the cache, running
    /// the model once over all misses. Within one batch the accounting
    /// matches the serial path exactly: the first occurrence of a missing
    /// key is a miss, every later duplicate is a hit.
    ///
    /// Query `i`'s table set is `set_of(i)` with `extra` (if any)
    /// appended; `keys[i]` must fingerprint exactly that multiset. Taking
    /// the sets as an indexing closure (rather than a slice of slices)
    /// lets hot callers probe directly out of their own storage without
    /// building a borrowed `Vec` per call.
    fn cached_compute_batch<'a>(
        &self,
        keys: &[u64],
        set_of: impl Fn(usize) -> &'a [TableProfile],
        extra: Option<&TableProfile>,
    ) -> Vec<f64> {
        let n = keys.len();
        if !self.cache_enabled {
            // Still count lookups so ablation hit rates read 0%.
            for _ in 0..n {
                self.cache.count_miss();
            }
            let feats: Vec<Vec<Vec<f32>>> = (0..n)
                .map(|i| self.features_with_extra(set_of(i), extra))
                .collect();
            return self.predict_compute_sets(&feats);
        }
        SIM_SCRATCH.with(|scratch| {
            let s = &mut *scratch.borrow_mut();
            let mut out = vec![f64::NAN; n];
            // First-occurrence slot of each key this batch must compute.
            s.pending.clear();
            s.miss_items.clear();
            s.dups.clear();
            for (i, &key) in keys.iter().enumerate() {
                if let Some(v) = self.cache.get_counted(key) {
                    out[i] = v;
                } else if let Some(&slot) = s.pending.get(&key) {
                    // The serial path would answer this from the cache.
                    self.cache.record_hit(key);
                    s.dups.push((i, slot));
                } else {
                    self.cache.record_miss(key);
                    s.pending.insert(key, s.miss_items.len());
                    s.miss_items.push(i);
                }
            }
            if !s.miss_items.is_empty() {
                let preds = if self.batch_enabled {
                    self.predict_misses_via_encodings(
                        &s.miss_items,
                        &set_of,
                        extra,
                        &mut s.pooled,
                        &mut s.table_keys,
                    )
                } else {
                    let feats: Vec<Vec<Vec<f32>>> = s
                        .miss_items
                        .iter()
                        .map(|&i| self.features_with_extra(set_of(i), extra))
                        .collect();
                    self.predict_compute_sets(&feats)
                };
                for (slot, &i) in s.miss_items.iter().enumerate() {
                    self.cache.insert_if_absent(keys[i], preds[slot]);
                    out[i] = preds[slot];
                }
                for &(i, slot) in &s.dups {
                    out[i] = preds[slot];
                }
            }
            out
        })
    }

    /// Scores the cache-missing sets by re-folding per-table encodings:
    /// tables never seen before are encoded with one batched encoder
    /// forward and memoized in the life-long [`EncodingCache`], every
    /// other table's encoding is read back, each miss's rows are left-fold
    /// summed in set order, and the pooled rows go through the head as one
    /// matrix. Bit-identical to the full forward — encoder rows are
    /// independent of batch composition and the fold matches the fused
    /// path's pooling order — while skipping the encoder (the bulk of the
    /// FLOPs) for every previously seen table.
    fn predict_misses_via_encodings<'a>(
        &self,
        miss_items: &[usize],
        set_of: impl Fn(usize) -> &'a [TableProfile],
        extra: Option<&TableProfile>,
        pooled: &mut Matrix,
        table_keys: &mut Vec<u64>,
    ) -> Vec<f64> {
        let model = self.bundle.compute_model();
        // Fingerprint every table of the miss batch; collect the ones with
        // no cached encoding (deduplicated — the list stays tiny because a
        // table is unknown at most once per search).
        table_keys.clear();
        let mut unknown: Vec<(u64, &TableProfile)> = Vec::new();
        for &i in miss_items {
            for t in set_of(i).iter().chain(extra) {
                let k = table_key(t);
                table_keys.push(k);
                if !self.encodings.contains(k) && !unknown.iter().any(|&(u, _)| u == k) {
                    unknown.push((k, t));
                }
            }
        }
        if !unknown.is_empty() {
            let feats: Vec<Vec<f32>> = unknown
                .iter()
                .map(|&(_, t)| table_features(t, self.bundle.batch_size))
                .collect();
            let encoded = model.encode_tables_with_mode(&feats, self.inference_mode);
            for (&(k, _), row) in unknown.iter().zip(encoded) {
                self.encodings.insert_if_absent(k, row.into_boxed_slice());
            }
        }
        pooled.reset(miss_items.len(), model.encoding_dim());
        let mut next_key = 0usize;
        for (slot, &i) in miss_items.iter().enumerate() {
            let acc = pooled.row_mut(slot);
            let count = set_of(i).len() + usize::from(extra.is_some());
            for &k in &table_keys[next_key..next_key + count] {
                let present = self.encodings.accumulate(k, acc);
                debug_assert!(present, "encoding missing from the life-long cache");
            }
            next_key += count;
        }
        model.head_costs_with_mode(pooled, self.inference_mode)
    }

    /// Predicted fused-kernel cost (fwd+bwd, ms) of one device's table set,
    /// memoized in the life-long cache.
    pub fn device_compute_cost(&self, tables: &[TableProfile]) -> f64 {
        self.device_compute_cost_keyed(TableSetKey::of(tables), tables)
    }

    /// Like [`CostSimulator::device_compute_cost`] for callers that
    /// maintain the set key incrementally (skips the O(n) rehash).
    ///
    /// `key` must fingerprint exactly the multiset in `tables`.
    pub fn device_compute_cost_keyed(&self, key: TableSetKey, tables: &[TableProfile]) -> f64 {
        let predict = || {
            self.bundle
                .compute
                .predict_with_mode(&self.features(tables), self.inference_mode)
        };
        if self.cache_enabled {
            self.cache.get_or_insert_with(key.key(), predict)
        } else {
            // Still count lookups so ablation hit rates read 0%.
            self.cache.count_miss();
            predict()
        }
    }

    /// Predicted costs of many device table sets, resolved with one
    /// batched model forward over the cache misses. Each `key` must
    /// fingerprint its paired multiset.
    pub fn device_compute_cost_batch(&self, sets: &[(TableSetKey, &[TableProfile])]) -> Vec<f64> {
        let keys: Vec<u64> = sets.iter().map(|(k, _)| k.key()).collect();
        self.cached_compute_batch(&keys, |i| sets[i].1, None)
    }

    /// Predicted costs of `extra` appended to each base set — the greedy
    /// allocator's probe pattern ("what if this table joined device g?")
    /// — scored with one batched forward over the cache misses and O(1)
    /// key updates.
    pub fn appended_compute_cost_batch(
        &self,
        bases: &[(TableSetKey, &[TableProfile])],
        extra: &TableProfile,
    ) -> Vec<f64> {
        let keys: Vec<u64> = bases.iter().map(|(k, _)| k.with(extra).key()).collect();
        self.cached_compute_batch(&keys, |i| bases[i].1, Some(extra))
    }

    /// [`CostSimulator::appended_compute_cost_batch`] for callers that
    /// keep per-device sets and keys in parallel arrays: candidate device
    /// `candidates[j]`'s probe cost lands in slot `j` of the result, and
    /// the device sets are read straight out of `device_sets` — no
    /// per-probe view building.
    pub fn appended_compute_cost_indexed(
        &self,
        device_sets: &[Vec<TableProfile>],
        device_keys: &[TableSetKey],
        candidates: &[usize],
        extra: &TableProfile,
        keys_scratch: &mut Vec<u64>,
    ) -> Vec<f64> {
        assert_eq!(
            device_sets.len(),
            device_keys.len(),
            "device sets and keys must be aligned"
        );
        keys_scratch.clear();
        keys_scratch.extend(candidates.iter().map(|&g| device_keys[g].with(extra).key()));
        self.cached_compute_batch(
            keys_scratch,
            |j| device_sets[candidates[j]].as_slice(),
            Some(extra),
        )
    }

    /// Predicted cost (fwd+bwd, ms) of a single table alone on a device —
    /// used by the search to rank candidate tables.
    pub fn single_table_cost(&self, table: &TableProfile) -> f64 {
        self.device_compute_cost(std::slice::from_ref(table))
    }

    /// [`CostSimulator::single_table_cost`] for many tables at once — one
    /// batched forward over the misses, each result memoized under the
    /// table's singleton set key.
    pub fn single_table_cost_batch(&self, tables: &[TableProfile]) -> Vec<f64> {
        let keys: Vec<u64> = tables
            .iter()
            .map(|t| table_set_key(std::slice::from_ref(t)))
            .collect();
        self.cached_compute_batch(&keys, |i| std::slice::from_ref(&tables[i]), None)
    }

    /// Estimates the full embedding cost of a plan (Equation 1's
    /// `f(c, t)`): predicted per-device computation, plus predicted max
    /// forward/backward communication with start skews derived from the
    /// computation estimates.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the bundle's device count.
    pub fn estimate_plan(&self, assignment: &[Vec<TableProfile>]) -> EstimatedCost {
        self.estimate_plan_batch(std::slice::from_ref(&assignment))
            .pop()
            .expect("one assignment in, one estimate out")
    }

    /// Estimates many plans at once: one batched (cached) compute call
    /// over every device set of every plan, then one batched forward per
    /// communication model. Each estimate is bit-identical to
    /// [`CostSimulator::estimate_plan`] on that plan alone.
    ///
    /// # Panics
    ///
    /// Panics if any assignment's device count differs from the bundle's.
    pub fn estimate_plan_batch<A: AsRef<[Vec<TableProfile>]>>(
        &self,
        assignments: &[A],
    ) -> Vec<EstimatedCost> {
        self.estimate_plan_batch_scaled(assignments, None)
    }

    /// Like [`CostSimulator::estimate_plan_batch`], with optional
    /// per-device heterogeneity scales (see [`DeviceScales`]): raw model
    /// predictions — and the cache holding them — are always baseline;
    /// compute predictions are multiplied by each device's compute class
    /// and communication dimensions divided by each device's effective
    /// bandwidth *after* retrieval. `None` is bit-identical to the
    /// unscaled API.
    ///
    /// # Panics
    ///
    /// Panics if any assignment's device count differs from the bundle's,
    /// or if `scales` covers a different number of devices.
    pub fn estimate_plan_batch_scaled<A: AsRef<[Vec<TableProfile>]>>(
        &self,
        assignments: &[A],
        scales: Option<&DeviceScales>,
    ) -> Vec<EstimatedCost> {
        let d = self.bundle.num_devices;
        for a in assignments {
            assert_eq!(
                a.as_ref().len(),
                d,
                "plan device count does not match the bundle"
            );
        }
        if let Some(s) = scales {
            assert_eq!(s.len(), d, "device scales do not match the bundle");
        }
        // One batched compute call over all device sets of all plans. The
        // cache stores RAW (baseline-hardware) predictions; heterogeneity
        // is applied on the way out so cached entries stay fleet-agnostic.
        let flat: Vec<&[TableProfile]> = assignments
            .iter()
            .flat_map(|a| a.as_ref().iter().map(Vec::as_slice))
            .collect();
        let keys: Vec<u64> = flat.iter().map(|s| table_set_key(s)).collect();
        let mut compute_flat = self.cached_compute_batch(&keys, |i| flat[i], None);
        if let Some(s) = scales {
            for (i, c) in compute_flat.iter_mut().enumerate() {
                *c *= s.compute_scale(i % d);
            }
        }

        let mut dims_all: Vec<Vec<f64>> = Vec::with_capacity(assignments.len());
        let mut fwd_starts_all: Vec<Vec<f64>> = Vec::with_capacity(assignments.len());
        for (pi, a) in assignments.iter().enumerate() {
            let compute = &compute_flat[pi * d..(pi + 1) * d];
            dims_all.push(
                a.as_ref()
                    .iter()
                    .enumerate()
                    .map(|(g, tables)| {
                        // Replicated shards contribute their comm share of
                        // the dimension; a slow link inflates the effective
                        // dimension proportionally.
                        let dim: f64 = tables.iter().map(TableProfile::comm_dim).sum();
                        match scales {
                            Some(s) => dim / s.bandwidth_scale(g),
                            None => dim,
                        }
                    })
                    .collect(),
            );
            // Forward comm starts when each device's forward kernel ends.
            fwd_starts_all.push(compute.iter().map(|c| c * FWD_FRACTION).collect());
        }
        let bwd_starts = vec![0.0; d];
        let fwd_placements: Vec<(&[f64], &[f64])> = dims_all
            .iter()
            .zip(&fwd_starts_all)
            .map(|(dims, starts)| (dims.as_slice(), starts.as_slice()))
            .collect();
        let bwd_placements: Vec<(&[f64], &[f64])> = dims_all
            .iter()
            .map(|dims| (dims.as_slice(), bwd_starts.as_slice()))
            .collect();
        let fwd = self.predict_comm(&self.bundle.comm_fwd, &fwd_placements);
        let bwd = self.predict_comm(&self.bundle.comm_bwd, &bwd_placements);

        (0..assignments.len())
            .map(|pi| {
                let compute = compute_flat[pi * d..(pi + 1) * d].to_vec();
                let max_compute = compute.iter().cloned().fold(0.0, f64::max);
                EstimatedCost {
                    compute_per_device: compute,
                    max_compute_ms: max_compute,
                    fwd_comm_ms: fwd[pi].max(0.0),
                    bwd_comm_ms: bwd[pi].max(0.0),
                }
            })
            .collect()
    }

    /// Runs one comm model over many placements, batched or row by row
    /// depending on the ablation toggle. Identical bits either way.
    fn predict_comm(&self, model: &CommCostModel, placements: &[(&[f64], &[f64])]) -> Vec<f64> {
        if self.batch_enabled {
            model.predict_batch_with_mode(placements, self.bundle.batch_size, self.inference_mode)
        } else {
            placements
                .iter()
                .map(|(dims, starts)| {
                    model.predict_with_mode(
                        dims,
                        starts,
                        self.bundle.batch_size,
                        self.inference_mode,
                    )
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_data::TablePool;

    fn quick_bundle(d: usize) -> CostModelBundle {
        let pool = TablePool::synthetic_dlrm(40, 1);
        CostModelBundle::pretrain(
            &pool,
            d,
            &CollectConfig::smoke(),
            &TrainSettings::smoke(),
            3,
        )
    }

    fn t(dim: u32) -> TableProfile {
        TableProfile::new(dim, 1 << 20, 12.0, 0.3, 1.0)
    }

    #[test]
    fn pretrain_produces_finite_report() {
        let bundle = quick_bundle(2);
        let r = bundle.report();
        assert!(r.compute_test_mse.is_finite());
        assert!(r.fwd_comm_test_mse.is_finite());
        assert!(r.bwd_comm_test_mse.is_finite());
        assert_eq!(bundle.num_devices(), 2);
    }

    #[test]
    fn estimate_plan_shape_and_cache() {
        let sim = CostSimulator::new(quick_bundle(2));
        let plan = vec![vec![t(64), t(32)], vec![t(16)]];
        let est = sim.estimate_plan(&plan);
        assert_eq!(est.compute_per_device.len(), 2);
        assert!(est.total_ms().is_finite());
        assert_eq!(sim.cache().misses(), 2);
        // Second estimate hits the cache for both devices.
        let _ = sim.estimate_plan(&plan);
        assert_eq!(sim.cache().hits(), 2);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let sim = CostSimulator::new(quick_bundle(2)).with_cache_disabled();
        let plan = vec![vec![t(64)], vec![t(16)]];
        let _ = sim.estimate_plan(&plan);
        let _ = sim.estimate_plan(&plan);
        assert_eq!(sim.cache().hits(), 0);
        assert_eq!(sim.cache().hit_rate(), 0.0);
    }

    #[test]
    fn batch_apis_match_scalar_apis_bit_for_bit() {
        let bundle = quick_bundle(2);
        let batched = CostSimulator::new(bundle.clone());
        let rowwise = CostSimulator::new(bundle).with_batching_disabled();
        assert!(batched.batching_enabled());
        assert!(!rowwise.batching_enabled());

        let tables = [t(64), t(32), t(16), t(8)];
        // single_table_cost_batch vs single_table_cost.
        let singles = batched.single_table_cost_batch(&tables);
        for (tab, &b) in tables.iter().zip(&singles) {
            assert_eq!(rowwise.single_table_cost(tab).to_bits(), b.to_bits());
        }

        // device_compute_cost_batch vs device_compute_cost, including an
        // in-batch duplicate and the empty set.
        let sets: Vec<Vec<TableProfile>> = vec![
            vec![t(64), t(32)],
            vec![t(16)],
            vec![t(64), t(32)], // duplicate of set 0
            vec![],
        ];
        let keyed: Vec<(TableSetKey, &[TableProfile])> = sets
            .iter()
            .map(|s| (TableSetKey::of(s), s.as_slice()))
            .collect();
        let costs = batched.device_compute_cost_batch(&keyed);
        for (s, &c) in sets.iter().zip(&costs) {
            assert_eq!(rowwise.device_compute_cost(s).to_bits(), c.to_bits());
        }

        // appended probe vs push-predict-pop.
        let extra = t(128);
        let appended = batched.appended_compute_cost_batch(&keyed, &extra);
        for (s, &c) in sets.iter().zip(&appended) {
            let mut probed = s.clone();
            probed.push(extra);
            assert_eq!(rowwise.device_compute_cost(&probed).to_bits(), c.to_bits());
        }

        // estimate_plan_batch vs estimate_plan.
        let plans = vec![
            vec![vec![t(64), t(32)], vec![t(16)]],
            vec![vec![t(8)], vec![t(64), t(8)]],
        ];
        let ests = batched.estimate_plan_batch(&plans);
        for (plan, est) in plans.iter().zip(&ests) {
            let scalar = rowwise.estimate_plan(plan);
            assert_eq!(scalar.total_ms().to_bits(), est.total_ms().to_bits());
            assert_eq!(scalar.compute_per_device, est.compute_per_device);
        }
    }

    #[test]
    fn unit_scales_are_bit_identical_to_unscaled() {
        let sim = CostSimulator::new(quick_bundle(2));
        let plans = vec![
            vec![vec![t(64), t(32)], vec![t(16)]],
            vec![vec![t(8)], vec![t(64), t(8)]],
        ];
        let plain = sim.estimate_plan_batch(&plans);
        // Even explicit all-1.0 scales must not perturb a single bit:
        // x * 1.0 and x / 1.0 are exact for finite f64.
        let unit = DeviceScales::new(vec![1.0; 2], vec![1.0; 2]);
        let scaled = sim.estimate_plan_batch_scaled(&plans, Some(&unit));
        for (p, s) in plain.iter().zip(&scaled) {
            assert_eq!(p.total_ms().to_bits(), s.total_ms().to_bits());
            assert_eq!(p.compute_per_device, s.compute_per_device);
            assert_eq!(p.fwd_comm_ms.to_bits(), s.fwd_comm_ms.to_bits());
        }
    }

    #[test]
    fn compute_scales_multiply_raw_predictions() {
        let sim = CostSimulator::new(quick_bundle(2));
        let plan = vec![vec![t(64), t(32)], vec![t(16)]];
        let plain = sim.estimate_plan(&plan);
        let scales = DeviceScales::new(vec![1.0, 3.0], vec![1.0, 1.0]);
        let scaled = sim
            .estimate_plan_batch_scaled(&[&plan[..]], Some(&scales))
            .pop()
            .unwrap();
        assert_eq!(
            scaled.compute_per_device[0].to_bits(),
            plain.compute_per_device[0].to_bits()
        );
        assert!((scaled.compute_per_device[1] - 3.0 * plain.compute_per_device[1]).abs() < 1e-12);
        // The cache kept raw predictions: estimating unscaled again hits
        // the same entries and returns the original values.
        let again = sim.estimate_plan(&plan);
        assert_eq!(again.compute_per_device, plain.compute_per_device);
    }

    #[test]
    fn slow_links_raise_predicted_comm() {
        let sim = CostSimulator::new(quick_bundle(2));
        let plan = vec![vec![t(64), t(32)], vec![t(64)]];
        let plain = sim.estimate_plan(&plan);
        let scales = DeviceScales::new(vec![1.0, 1.0], vec![1.0, 0.25]);
        let scaled = sim
            .estimate_plan_batch_scaled(&[&plan[..]], Some(&scales))
            .pop()
            .unwrap();
        assert!(scaled.fwd_comm_ms > plain.fwd_comm_ms);
        assert_eq!(scaled.compute_per_device, plain.compute_per_device);
    }

    #[test]
    fn replicated_shards_lower_predicted_comm() {
        let sim = CostSimulator::new(quick_bundle(2));
        let full = t(64);
        let replica = t(64).with_comm_share(0.5);
        let plan_full = vec![vec![full, t(32)], vec![full]];
        let plan_repl = vec![vec![replica, t(32)], vec![full]];
        let a = sim.estimate_plan(&plan_full);
        let b = sim.estimate_plan(&plan_repl);
        assert!(b.fwd_comm_ms < a.fwd_comm_ms);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn degenerate_device_scales_rejected() {
        let _ = DeviceScales::new(vec![1.0, 0.0], vec![1.0, 1.0]);
    }

    #[test]
    fn batch_accounting_matches_serial_within_a_batch() {
        let sim = CostSimulator::new(quick_bundle(2));
        let a = vec![t(64)];
        let b = vec![t(16)];
        let keyed: Vec<(TableSetKey, &[TableProfile])> = [&a, &b, &a, &a]
            .iter()
            .map(|s| (TableSetKey::of(s), s.as_slice()))
            .collect();
        let _ = sim.device_compute_cost_batch(&keyed);
        // Serial replay: miss(a), miss(b), hit(a), hit(a).
        assert_eq!(sim.cache().misses(), 2);
        assert_eq!(sim.cache().hits(), 2);
    }

    #[test]
    fn int8_mode_estimates_stay_close_to_f32() {
        let bundle = quick_bundle(2);
        let exact_sim = CostSimulator::new(bundle.clone());
        let quant_sim = CostSimulator::new(bundle).with_inference_mode(InferenceMode::Int8);
        assert_eq!(exact_sim.inference_mode(), InferenceMode::F32);
        assert_eq!(quant_sim.inference_mode(), InferenceMode::Int8);
        let plan = vec![vec![t(64), t(32)], vec![t(16)]];
        let exact = exact_sim.estimate_plan(&plan).total_ms();
        let quant = quant_sim.estimate_plan(&plan).total_ms();
        assert!(quant.is_finite());
        let denom = exact.abs().max(1e-3);
        assert!(
            ((exact - quant).abs() / denom) < 0.25,
            "int8 estimate {quant} drifted too far from f32 {exact}"
        );
    }

    #[test]
    fn total_is_sum_of_parts() {
        let sim = CostSimulator::new(quick_bundle(2));
        let est = sim.estimate_plan(&[vec![t(64)], vec![t(8)]]);
        let by_hand = est.max_compute_ms + est.fwd_comm_ms + est.bwd_comm_ms;
        assert!((est.total_ms() - by_hand).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "does not match the bundle")]
    fn wrong_plan_width_panics() {
        let sim = CostSimulator::new(quick_bundle(2));
        let _ = sim.estimate_plan(&[vec![t(8)]]);
    }

    #[test]
    fn bundle_serde_round_trip() {
        let bundle = quick_bundle(2);
        let json = serde_json::to_string(&bundle).unwrap();
        let back: CostModelBundle = serde_json::from_str(&json).unwrap();
        assert_eq!(bundle, back);
    }
}
