//! The pre-trained cost-model bundle and the sharding cost simulator.
//!
//! [`CostModelBundle`] packages the three pre-trained models (computation,
//! forward communication, backward communication) for one cluster setting.
//! [`CostSimulator`] wraps a bundle with the life-long prediction cache and
//! estimates the embedding cost of any sharding plan by summing the
//! predicted max computation, forward communication and backward
//! communication costs (§3.3) — no ground-truth (GPU) execution involved.

use serde::{Deserialize, Serialize};

use nshard_data::TablePool;
use nshard_sim::{CommParams, GpuSpec, KernelParams, TableProfile};

use crate::cache::{table_set_key, PredictionCache};
use crate::collect::{collect_comm_data, collect_compute_data, CollectConfig};
use crate::comm_model::CommCostModel;
use crate::compute::ComputeCostModel;
use crate::features::table_features;

/// Fraction of the combined forward+backward kernel cost attributable to
/// the forward pass (used to estimate all-to-all start skews at search
/// time; matches the simulator's default backward/forward ratio).
const FWD_FRACTION: f64 = 1.0 / 2.45;

/// Training hyperparameters for all three cost models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainSettings {
    /// Training epochs (the paper uses 1000; the smooth simulator labels
    /// converge far faster).
    pub epochs: usize,
    /// Mini-batch size (paper: 512).
    pub batch_size: usize,
    /// Adam learning rate (paper: 0.001).
    pub learning_rate: f32,
}

impl Default for TrainSettings {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 128,
            learning_rate: 1e-3,
        }
    }
}

impl TrainSettings {
    /// A reduced setting for tests and smoke runs.
    pub fn smoke() -> Self {
        Self {
            epochs: 10,
            batch_size: 64,
            learning_rate: 2e-3,
        }
    }
}

/// Quality report of a pre-training run (the numbers behind Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BundleReport {
    /// Held-out test MSE of the computation cost model (ms²).
    pub compute_test_mse: f32,
    /// Held-out test MSE of the forward communication model (ms²).
    pub fwd_comm_test_mse: f32,
    /// Held-out test MSE of the backward communication model (ms²).
    pub bwd_comm_test_mse: f32,
    /// Number of computation samples collected.
    pub compute_samples: usize,
    /// Number of communication samples collected.
    pub comm_samples: usize,
}

/// The three pre-trained neural cost models for one cluster setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModelBundle {
    compute: ComputeCostModel,
    comm_fwd: CommCostModel,
    comm_bwd: CommCostModel,
    num_devices: usize,
    batch_size: u32,
    report: BundleReport,
}

impl CostModelBundle {
    /// Pre-trains a bundle against the default RTX 2080 Ti cluster laws.
    ///
    /// This is the reproduction of the paper's middle row of Figure 6:
    /// generate synthetic inputs, micro-benchmark them, train the three
    /// models.
    pub fn pretrain(
        pool: &TablePool,
        num_devices: usize,
        collect: &CollectConfig,
        train: &TrainSettings,
        seed: u64,
    ) -> Self {
        Self::pretrain_with_spec(
            pool,
            num_devices,
            &GpuSpec::rtx_2080_ti(),
            collect,
            train,
            seed,
        )
    }

    /// Pre-trains a bundle against an explicit hardware spec (e.g.
    /// [`GpuSpec::datacenter`] for the production experiments).
    pub fn pretrain_with_spec(
        pool: &TablePool,
        num_devices: usize,
        spec: &GpuSpec,
        collect: &CollectConfig,
        train: &TrainSettings,
        seed: u64,
    ) -> Self {
        Self::pretrain_with_laws(
            pool,
            num_devices,
            spec.kernel(),
            spec.comm(),
            collect,
            train,
            seed,
        )
    }

    /// Pre-trains against explicit cost laws.
    pub fn pretrain_with_laws(
        pool: &TablePool,
        num_devices: usize,
        kernel: &KernelParams,
        comm: &CommParams,
        collect: &CollectConfig,
        train: &TrainSettings,
        seed: u64,
    ) -> Self {
        let compute_data = collect_compute_data(pool, kernel, collect, seed);
        let comm_data = collect_comm_data(pool, comm, num_devices, collect, seed ^ 0x1234);

        let mut compute = ComputeCostModel::new(seed);
        let compute_report = compute.train(
            &compute_data,
            train.epochs,
            train.batch_size,
            train.learning_rate,
            seed ^ 0x1,
        );

        let mut comm_fwd = CommCostModel::new(num_devices, seed ^ 0x2);
        let fwd_report = comm_fwd.train(
            &comm_data.forward,
            train.epochs,
            train.batch_size,
            train.learning_rate,
            seed ^ 0x3,
        );
        let mut comm_bwd = CommCostModel::new(num_devices, seed ^ 0x4);
        let bwd_report = comm_bwd.train(
            &comm_data.backward,
            train.epochs,
            train.batch_size,
            train.learning_rate,
            seed ^ 0x5,
        );

        Self {
            compute,
            comm_fwd,
            comm_bwd,
            num_devices,
            batch_size: collect.batch_size,
            report: BundleReport {
                compute_test_mse: compute_report.test_mse,
                fwd_comm_test_mse: fwd_report.test_mse,
                bwd_comm_test_mse: bwd_report.test_mse,
                compute_samples: collect.compute_samples,
                comm_samples: collect.comm_samples,
            },
        }
    }

    /// Builds a bundle from already-trained parts (used by tests and custom
    /// pipelines).
    pub fn from_parts(
        compute: ComputeCostModel,
        comm_fwd: CommCostModel,
        comm_bwd: CommCostModel,
        batch_size: u32,
        report: BundleReport,
    ) -> Self {
        let num_devices = comm_fwd.num_devices();
        assert_eq!(
            num_devices,
            comm_bwd.num_devices(),
            "forward/backward comm models disagree on device count"
        );
        Self {
            compute,
            comm_fwd,
            comm_bwd,
            num_devices,
            batch_size,
            report,
        }
    }

    /// The computation cost model.
    pub fn compute_model(&self) -> &ComputeCostModel {
        &self.compute
    }

    /// The forward communication cost model.
    pub fn comm_fwd_model(&self) -> &CommCostModel {
        &self.comm_fwd
    }

    /// The backward communication cost model.
    pub fn comm_bwd_model(&self) -> &CommCostModel {
        &self.comm_bwd
    }

    /// Device count this bundle was trained for.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Batch size of the training workload.
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// The pre-training quality report (Table 2 numbers).
    pub fn report(&self) -> &BundleReport {
        &self.report
    }
}

/// Estimated cost breakdown of one sharding plan, per §3.3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatedCost {
    /// Predicted fused-kernel cost per device (fwd+bwd), ms.
    pub compute_per_device: Vec<f64>,
    /// Max predicted computation cost, ms.
    pub max_compute_ms: f64,
    /// Predicted max forward all-to-all cost, ms.
    pub fwd_comm_ms: f64,
    /// Predicted max backward all-to-all cost, ms.
    pub bwd_comm_ms: f64,
}

impl EstimatedCost {
    /// The plan's estimated embedding cost: max computation + forward comm
    /// + backward comm (the objective `f(c, t)` of Equation 1).
    pub fn total_ms(&self) -> f64 {
        self.max_compute_ms + self.fwd_comm_ms + self.bwd_comm_ms
    }
}

/// A sharding simulator: pre-trained bundle + life-long prediction cache.
///
/// # Example
///
/// ```no_run
/// use nshard_cost::{CollectConfig, CostModelBundle, CostSimulator, TrainSettings};
/// use nshard_data::TablePool;
/// use nshard_sim::TableProfile;
///
/// let pool = TablePool::synthetic_dlrm(856, 0);
/// let bundle = CostModelBundle::pretrain(
///     &pool, 2, &CollectConfig::smoke(), &TrainSettings::smoke(), 0,
/// );
/// let sim = CostSimulator::new(bundle);
/// let t = TableProfile::new(64, 1 << 20, 12.0, 0.3, 1.0);
/// let est = sim.estimate_plan(&[vec![t], vec![t]]);
/// println!("estimated cost {:.2} ms", est.total_ms());
/// ```
#[derive(Debug)]
pub struct CostSimulator {
    bundle: CostModelBundle,
    cache: PredictionCache,
    cache_enabled: bool,
}

impl CostSimulator {
    /// Wraps a bundle with a fresh cache.
    pub fn new(bundle: CostModelBundle) -> Self {
        Self {
            bundle,
            cache: PredictionCache::new(),
            cache_enabled: true,
        }
    }

    /// Disables the prediction cache (the "w/o caching" ablation of
    /// Table 3).
    pub fn with_cache_disabled(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// The underlying bundle.
    pub fn bundle(&self) -> &CostModelBundle {
        &self.bundle
    }

    /// The prediction cache (for hit-rate reporting).
    pub fn cache(&self) -> &PredictionCache {
        &self.cache
    }

    /// Predicted fused-kernel cost (fwd+bwd, ms) of one device's table set,
    /// memoized in the life-long cache.
    pub fn device_compute_cost(&self, tables: &[TableProfile]) -> f64 {
        let predict = || {
            let feats: Vec<Vec<f32>> = tables
                .iter()
                .map(|t| table_features(t, self.bundle.batch_size))
                .collect();
            self.bundle.compute.predict(&feats)
        };
        if self.cache_enabled {
            self.cache
                .get_or_insert_with(table_set_key(tables), predict)
        } else {
            // Still count lookups so ablation hit rates read 0%.
            self.cache.count_miss();
            predict()
        }
    }

    /// Predicted cost (fwd+bwd, ms) of a single table alone on a device —
    /// used by the search to rank candidate tables.
    pub fn single_table_cost(&self, table: &TableProfile) -> f64 {
        self.device_compute_cost(std::slice::from_ref(table))
    }

    /// Estimates the full embedding cost of a plan (Equation 1's
    /// `f(c, t)`): predicted per-device computation, plus predicted max
    /// forward/backward communication with start skews derived from the
    /// computation estimates.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the bundle's device count.
    pub fn estimate_plan(&self, assignment: &[Vec<TableProfile>]) -> EstimatedCost {
        assert_eq!(
            assignment.len(),
            self.bundle.num_devices,
            "plan device count does not match the bundle"
        );
        let compute: Vec<f64> = assignment
            .iter()
            .map(|tables| self.device_compute_cost(tables))
            .collect();
        let max_compute = compute.iter().cloned().fold(0.0, f64::max);
        let dims: Vec<f64> = assignment
            .iter()
            .map(|tables| tables.iter().map(|t| f64::from(t.dim())).sum())
            .collect();
        // Forward comm starts when each device's forward kernel ends.
        let fwd_starts: Vec<f64> = compute.iter().map(|c| c * FWD_FRACTION).collect();
        let fwd = self
            .bundle
            .comm_fwd
            .predict(&dims, &fwd_starts, self.bundle.batch_size);
        let bwd_starts = vec![0.0; dims.len()];
        let bwd = self
            .bundle
            .comm_bwd
            .predict(&dims, &bwd_starts, self.bundle.batch_size);
        EstimatedCost {
            compute_per_device: compute,
            max_compute_ms: max_compute,
            fwd_comm_ms: fwd.max(0.0),
            bwd_comm_ms: bwd.max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_data::TablePool;

    fn quick_bundle(d: usize) -> CostModelBundle {
        let pool = TablePool::synthetic_dlrm(40, 1);
        CostModelBundle::pretrain(
            &pool,
            d,
            &CollectConfig::smoke(),
            &TrainSettings::smoke(),
            3,
        )
    }

    fn t(dim: u32) -> TableProfile {
        TableProfile::new(dim, 1 << 20, 12.0, 0.3, 1.0)
    }

    #[test]
    fn pretrain_produces_finite_report() {
        let bundle = quick_bundle(2);
        let r = bundle.report();
        assert!(r.compute_test_mse.is_finite());
        assert!(r.fwd_comm_test_mse.is_finite());
        assert!(r.bwd_comm_test_mse.is_finite());
        assert_eq!(bundle.num_devices(), 2);
    }

    #[test]
    fn estimate_plan_shape_and_cache() {
        let sim = CostSimulator::new(quick_bundle(2));
        let plan = vec![vec![t(64), t(32)], vec![t(16)]];
        let est = sim.estimate_plan(&plan);
        assert_eq!(est.compute_per_device.len(), 2);
        assert!(est.total_ms().is_finite());
        assert_eq!(sim.cache().misses(), 2);
        // Second estimate hits the cache for both devices.
        let _ = sim.estimate_plan(&plan);
        assert_eq!(sim.cache().hits(), 2);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let sim = CostSimulator::new(quick_bundle(2)).with_cache_disabled();
        let plan = vec![vec![t(64)], vec![t(16)]];
        let _ = sim.estimate_plan(&plan);
        let _ = sim.estimate_plan(&plan);
        assert_eq!(sim.cache().hits(), 0);
        assert_eq!(sim.cache().hit_rate(), 0.0);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let sim = CostSimulator::new(quick_bundle(2));
        let est = sim.estimate_plan(&[vec![t(64)], vec![t(8)]]);
        let by_hand = est.max_compute_ms + est.fwd_comm_ms + est.bwd_comm_ms;
        assert!((est.total_ms() - by_hand).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "does not match the bundle")]
    fn wrong_plan_width_panics() {
        let sim = CostSimulator::new(quick_bundle(2));
        let _ = sim.estimate_plan(&[vec![t(8)]]);
    }

    #[test]
    fn bundle_serde_round_trip() {
        let bundle = quick_bundle(2);
        let json = serde_json::to_string(&bundle).unwrap();
        let back: CostModelBundle = serde_json::from_str(&json).unwrap();
        assert_eq!(bundle, back);
    }
}
