//! Micro-benchmark data collection (the reproduction's PARAM benchmarks).
//!
//! Drives the ground-truth simulator with the synthetic inputs of §3.1
//! (Algorithms 3–5) to produce labeled training data for the three cost
//! models, exactly as the paper collects costs from real GPUs.
//!
//! ## Parallel collection
//!
//! Sample `i` of a run seeded with `seed` draws from its own RNG seeded
//! with [`nshard_pool::sample_seed`]`(seed, i)`, and the simulator's noise
//! model is a pure function of its stream id — no sequential RNG state is
//! shared across samples. Collection therefore fans out over a
//! [`WorkPool`] and the resulting dataset is **bit-identical** at any
//! [`CollectConfig::threads`] setting, including the serial `threads = 1`.

use nshard_pool::{sample_seed, WorkPool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use nshard_data::{augment_pool, CombinationGenerator, PlacementGenerator, TablePool, PAPER_DIMS};
use nshard_nn::{Dataset, Matrix};
use nshard_sim::{CommParams, KernelParams, NoiseModel};

use crate::features::{comm_features, table_features};

/// Configuration of the data-collection run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectConfig {
    /// Number of computation-cost samples (paper default 100 K; the crate
    /// default is smaller because Figure 8 shows ~10³–10⁴ already saturates
    /// sharding quality).
    pub compute_samples: usize,
    /// Number of communication-cost samples.
    pub comm_samples: usize,
    /// Dimension set for table augmentation (Algorithm 3).
    pub augment_dims: Vec<u32>,
    /// Min/max tables per combination (Algorithm 4; paper: 1–15).
    pub combo_tables: (usize, usize),
    /// Min/max tables per placement (Algorithm 5; paper: 10–60 for 4 GPUs,
    /// 20–120 for 8 GPUs). When `None`, scaled from the device count.
    pub placement_tables: Option<(usize, usize)>,
    /// Max random start-timestamp in ms (paper: 20).
    pub max_start_ms: f64,
    /// Batch size of the simulated workload.
    pub batch_size: u32,
    /// Measurement repeats per label (median is taken).
    pub repeats: u32,
    /// Relative measurement noise.
    pub noise_sigma: f64,
    /// Worker threads for label collection; `0` = auto (the
    /// `NSHARD_THREADS` environment variable, then available parallelism,
    /// via [`nshard_pool::resolve_threads`]). Collected datasets are
    /// bit-identical at any setting.
    pub threads: usize,
}

impl Default for CollectConfig {
    fn default() -> Self {
        Self {
            compute_samples: 8_000,
            comm_samples: 6_000,
            augment_dims: PAPER_DIMS.to_vec(),
            combo_tables: (1, 15),
            placement_tables: None,
            max_start_ms: 20.0,
            batch_size: nshard_sim::DEFAULT_BATCH_SIZE,
            repeats: 11,
            noise_sigma: 0.02,
            threads: 0,
        }
    }
}

impl CollectConfig {
    /// The paper's full-scale configuration (100 K samples per model).
    pub fn paper_scale() -> Self {
        Self {
            compute_samples: 100_000,
            comm_samples: 100_000,
            ..Self::default()
        }
    }

    /// A reduced configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        Self {
            compute_samples: 400,
            comm_samples: 400,
            ..Self::default()
        }
    }

    /// Placement table range: explicit override or the paper's scaling
    /// (`10·D/4 .. 60·D/4`, clamped to at least 2).
    pub fn placement_range(&self, num_devices: usize) -> (usize, usize) {
        self.placement_tables.unwrap_or_else(|| {
            let lo = (10 * num_devices / 4).max(2);
            let hi = (60 * num_devices / 4).max(lo + 1);
            (lo, hi)
        })
    }
}

/// One computation-cost training sample: per-table feature vectors plus the
/// measured fused-kernel cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeSample {
    /// Feature vectors, one per table in the combination.
    pub tables: Vec<Vec<f32>>,
    /// Measured forward+backward cost in ms.
    pub cost_ms: f32,
}

/// A collected computation-cost dataset.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ComputeDataset {
    /// The samples.
    pub samples: Vec<ComputeSample>,
}

impl ComputeDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Shuffled 80/10/10 split by sample index.
    pub fn split(&self, seed: u64) -> (ComputeDataset, ComputeDataset, ComputeDataset) {
        use rand::Rng;
        let n = self.samples.len();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        let n_train = ((n as f64) * 0.8).round() as usize;
        let n_valid = ((n as f64) * 0.1).round() as usize;
        let pick = |range: &[usize]| ComputeDataset {
            samples: range.iter().map(|&i| self.samples[i].clone()).collect(),
        };
        (
            pick(&idx[..n_train.min(n)]),
            pick(&idx[n_train.min(n)..(n_train + n_valid).min(n)]),
            pick(&idx[(n_train + n_valid).min(n)..]),
        )
    }
}

/// Collects computation-cost data: random table combinations (Algorithm 4)
/// over the augmented pool (Algorithm 3), labeled by the simulated fused
/// multi-table kernel.
///
/// Samples fan out over a [`WorkPool`] sized by [`CollectConfig::threads`];
/// sample `i` is generated from its own RNG seeded with
/// [`sample_seed`]`(seed, i)`, so the dataset does not depend on the worker
/// count or completion order.
pub fn collect_compute_data(
    pool: &TablePool,
    kernel: &KernelParams,
    config: &CollectConfig,
    seed: u64,
) -> ComputeDataset {
    let augmented = augment_pool(pool, &config.augment_dims);
    let generator =
        CombinationGenerator::new(augmented, config.combo_tables.0, config.combo_tables.1);
    let noise = NoiseModel::new(seed ^ 0xC0FFEE, config.noise_sigma);
    let workers = WorkPool::new(config.threads);
    let indices: Vec<u64> = (0..config.compute_samples as u64).collect();
    let samples = workers.map(&indices, |&i| {
        let mut rng = StdRng::seed_from_u64(sample_seed(seed, i));
        let combo = generator.generate_one(&mut rng);
        let profiles = combo.profiles(config.batch_size);
        let cost =
            kernel.measure_multi_cost_ms(&profiles, config.batch_size, &noise, config.repeats);
        ComputeSample {
            tables: profiles
                .iter()
                .map(|p| table_features(p, config.batch_size))
                .collect(),
            cost_ms: cost as f32,
        }
    });
    ComputeDataset { samples }
}

/// A pair of communication datasets (forward, backward), each a fixed-width
/// regression problem on the features of [`comm_features`].
#[derive(Debug, Clone, PartialEq)]
pub struct CommDataset {
    /// Forward all-to-all max-latency regression data.
    pub forward: Dataset,
    /// Backward all-to-all max-latency regression data.
    pub backward: Dataset,
}

/// Collects communication-cost data: random placements (Algorithm 5) with
/// random start timestamps, labeled by the simulated all-to-all collective's
/// **max** per-GPU latency (the quantity the search minimizes).
///
/// Like [`collect_compute_data`], samples fan out over a [`WorkPool`] with
/// per-sample seeding, so the datasets are bit-identical at any
/// [`CollectConfig::threads`] setting.
///
/// # Panics
///
/// Panics if `config.comm_samples == 0` (a dataset must be non-empty).
pub fn collect_comm_data(
    pool: &TablePool,
    comm: &CommParams,
    num_devices: usize,
    config: &CollectConfig,
    seed: u64,
) -> CommDataset {
    assert!(config.comm_samples > 0, "comm_samples must be positive");
    let augmented = augment_pool(pool, &config.augment_dims);
    let (t_min, t_max) = config.placement_range(num_devices);
    let generator = PlacementGenerator::new(augmented, num_devices, t_min, t_max)
        .with_max_start_ms(config.max_start_ms);
    let noise = NoiseModel::new(seed ^ 0xBEEF, config.noise_sigma);
    let workers = WorkPool::new(config.threads);
    let indices: Vec<u64> = (0..config.comm_samples as u64).collect();
    let rows = workers.map(&indices, |&i| {
        let mut rng = StdRng::seed_from_u64(sample_seed(seed, i));
        let p = generator.generate_one(&mut rng);
        let dims = p.device_dims();
        let costs = comm.measure_costs_ms(
            &dims,
            &p.start_ts_ms,
            config.batch_size,
            &noise,
            config.repeats,
        );
        (
            comm_features(&dims, &p.start_ts_ms, config.batch_size),
            costs.max_fwd_ms() as f32,
            costs.max_bwd_ms() as f32,
        )
    });

    let mut xs: Vec<Vec<f32>> = Vec::with_capacity(rows.len());
    let mut fwd_y: Vec<Vec<f32>> = Vec::with_capacity(rows.len());
    let mut bwd_y: Vec<Vec<f32>> = Vec::with_capacity(rows.len());
    for (features, fwd, bwd) in rows {
        xs.push(features);
        fwd_y.push(vec![fwd]);
        bwd_y.push(vec![bwd]);
    }
    let x = Matrix::from_rows(&xs);
    CommDataset {
        forward: Dataset::new(x.clone(), Matrix::from_rows(&fwd_y))
            .expect("same row counts by construction"),
        backward: Dataset::new(x, Matrix::from_rows(&bwd_y))
            .expect("same row counts by construction"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> TablePool {
        TablePool::synthetic_dlrm(60, 11)
    }

    #[test]
    fn compute_collection_shapes() {
        let cfg = CollectConfig {
            compute_samples: 50,
            ..CollectConfig::smoke()
        };
        let data = collect_compute_data(&pool(), &KernelParams::rtx_2080_ti(), &cfg, 1);
        assert_eq!(data.len(), 50);
        for s in &data.samples {
            assert!((1..=15).contains(&s.tables.len()));
            assert!(s.cost_ms > 0.0);
            for f in &s.tables {
                assert_eq!(f.len(), crate::features::TABLE_FEATURE_DIM);
            }
        }
    }

    #[test]
    fn compute_collection_is_deterministic() {
        let cfg = CollectConfig {
            compute_samples: 10,
            ..CollectConfig::smoke()
        };
        let k = KernelParams::rtx_2080_ti();
        assert_eq!(
            collect_compute_data(&pool(), &k, &cfg, 5),
            collect_compute_data(&pool(), &k, &cfg, 5)
        );
    }

    #[test]
    fn compute_split_partitions() {
        let cfg = CollectConfig {
            compute_samples: 100,
            ..CollectConfig::smoke()
        };
        let data = collect_compute_data(&pool(), &KernelParams::rtx_2080_ti(), &cfg, 2);
        let (train, valid, test) = data.split(9);
        assert_eq!(train.len() + valid.len() + test.len(), 100);
        assert_eq!(train.len(), 80);
    }

    #[test]
    fn comm_collection_shapes() {
        let cfg = CollectConfig {
            comm_samples: 40,
            ..CollectConfig::smoke()
        };
        let data = collect_comm_data(&pool(), &CommParams::pcie_server(), 4, &cfg, 3);
        assert_eq!(data.forward.len(), 40);
        assert_eq!(data.backward.len(), 40);
        assert_eq!(
            data.forward.x().cols(),
            crate::features::comm_feature_dim(4)
        );
    }

    #[test]
    fn comm_labels_are_positive() {
        let cfg = CollectConfig {
            comm_samples: 20,
            ..CollectConfig::smoke()
        };
        let data = collect_comm_data(&pool(), &CommParams::pcie_server(), 4, &cfg, 7);
        for r in 0..data.forward.len() {
            assert!(data.forward.y().get(r, 0) > 0.0);
            assert!(data.backward.y().get(r, 0) > 0.0);
        }
    }

    #[test]
    fn placement_range_scales_with_devices() {
        let cfg = CollectConfig::default();
        assert_eq!(cfg.placement_range(4), (10, 60));
        assert_eq!(cfg.placement_range(8), (20, 120));
        let explicit = CollectConfig {
            placement_tables: Some((3, 7)),
            ..CollectConfig::default()
        };
        assert_eq!(explicit.placement_range(8), (3, 7));
    }
}
