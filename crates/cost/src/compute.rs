//! The computation cost model (Figure 5, left).
//!
//! A DeepSets-style regressor: a **shared** MLP encodes each table's
//! feature vector, the per-table encodings are element-wise summed into a
//! fixed-size representation of the table combination, and a head MLP
//! produces the fused-kernel forward+backward cost. The sum pooling is what
//! makes the model handle any number of tables — the property that lets one
//! pre-trained model serve every sharding task.

use std::cell::RefCell;
use std::sync::OnceLock;

use nshard_pool::WorkPool;
use serde::{Deserialize, Serialize};

use nshard_nn::{Adam, Gradients, Matrix, Mlp, MlpScratch, QuantizedMlp};

use crate::collect::{ComputeDataset, ComputeSample};
use crate::features::TABLE_FEATURE_DIM;
use crate::simulator::{InferenceMode, TrainSettings};

/// The paper's encoder architecture: table features → 128 → 32.
const ENCODER_HIDDEN: [usize; 1] = [128];
const ENCODER_OUT: usize = 32;
/// The paper's head architecture: 32 → 64 → 1.
const HEAD_HIDDEN: [usize; 1] = [64];

/// Training report of the computation cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeTrainReport {
    /// MSE on the training partition (best-validation checkpoint).
    pub train_mse: f32,
    /// Best validation MSE.
    pub valid_mse: f32,
    /// MSE on the held-out test partition.
    pub test_mse: f32,
    /// Per-epoch validation MSE.
    pub valid_history: Vec<f32>,
}

/// The pre-trained computation cost model.
///
/// # Example
///
/// ```
/// use nshard_cost::{table_features, ComputeCostModel};
/// use nshard_sim::TableProfile;
///
/// let model = ComputeCostModel::new(0);
/// let t = TableProfile::new(64, 1 << 20, 15.0, 0.3, 1.1);
/// let features = vec![table_features(&t, 65_536)];
/// let cost = model.predict(&features);
/// assert!(cost.is_finite());
/// ```
#[derive(Debug)]
pub struct ComputeCostModel {
    encoder: Mlp,
    head: Mlp,
    /// Lazily built int8 snapshot of `(encoder, head)` for
    /// [`InferenceMode::Int8`]; derived state, invalidated on retrain and
    /// never serialized or compared.
    quant: OnceLock<QuantizedPair>,
}

#[derive(Debug, Clone, PartialEq)]
struct QuantizedPair {
    encoder: QuantizedMlp,
    head: QuantizedMlp,
}

/// Reusable per-thread buffers for `predict`/`predict_batch`: the batch
/// input, the pooled per-set encodings, and the two MLPs' activation
/// ping-pongs. Thread-local because models are shared `&self` across
/// search worker threads.
#[derive(Debug, Default)]
struct ComputeScratch {
    x: Matrix,
    pooled: Matrix,
    enc: MlpScratch,
    head: MlpScratch,
}

thread_local! {
    static COMPUTE_SCRATCH: RefCell<ComputeScratch> = RefCell::new(ComputeScratch::default());
}

impl Clone for ComputeCostModel {
    fn clone(&self) -> Self {
        Self {
            encoder: self.encoder.clone(),
            head: self.head.clone(),
            quant: self
                .quant
                .get()
                .cloned()
                .map(OnceLock::from)
                .unwrap_or_default(),
        }
    }
}

impl PartialEq for ComputeCostModel {
    fn eq(&self, other: &Self) -> bool {
        self.encoder == other.encoder && self.head == other.head
    }
}

// Mirrors the historical derive on `{ encoder, head }` so committed model
// fixtures stay byte-compatible; the quantized cache is derived state.
impl serde::Serialize for ComputeCostModel {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Map(vec![
            (
                String::from("encoder"),
                serde::Serialize::to_value(&self.encoder),
            ),
            (String::from("head"), serde::Serialize::to_value(&self.head)),
        ])
    }
}

impl serde::Deserialize for ComputeCostModel {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        let map = v.as_map().ok_or_else(|| {
            serde::de::Error::custom(format!(
                "expected object for struct ComputeCostModel, found {}",
                v.kind()
            ))
        })?;
        Ok(ComputeCostModel {
            encoder: serde::__field(map, "encoder")?,
            head: serde::__field(map, "head")?,
            quant: OnceLock::new(),
        })
    }
}

impl ComputeCostModel {
    /// A freshly initialized (untrained) model with the paper's
    /// architecture (encoder 128-32, head 64).
    pub fn new(seed: u64) -> Self {
        Self::with_architecture(&ENCODER_HIDDEN, &HEAD_HIDDEN, seed)
    }

    /// A model with custom hidden layers (empty slices give a *linear*
    /// encoder/head — the ablation §4.2 argues cannot capture the
    /// non-linear costs).
    pub fn with_architecture(encoder_hidden: &[usize], head_hidden: &[usize], seed: u64) -> Self {
        Self {
            encoder: Mlp::new(TABLE_FEATURE_DIM, encoder_hidden, ENCODER_OUT, seed),
            head: Mlp::new(ENCODER_OUT, head_hidden, 1, seed ^ 0x5EED_CAFE),
            quant: OnceLock::new(),
        }
    }

    /// A fully linear model (no hidden layers anywhere): prediction is a
    /// linear function of the summed table features.
    pub fn linear(seed: u64) -> Self {
        Self::with_architecture(&[], &[], seed)
    }

    /// The int8 snapshot of the current weights, built on first use.
    fn quantized(&self) -> &QuantizedPair {
        self.quant.get_or_init(|| QuantizedPair {
            encoder: QuantizedMlp::from_mlp(&self.encoder),
            head: QuantizedMlp::from_mlp(&self.head),
        })
    }

    /// The largest recorded per-layer weight-quantization error bound
    /// across the encoder and head (`scale / 2` of the widest layer).
    pub fn quantization_error_bound(&self) -> f32 {
        let q = self.quantized();
        q.encoder.error_bound().max(q.head.error_bound())
    }

    /// Predicts the fused multi-table kernel cost (ms) for a combination
    /// given per-table feature vectors.
    ///
    /// An empty combination predicts the head's response to a zero sum
    /// (≈ the kernel launch overhead once trained).
    pub fn predict(&self, tables: &[Vec<f32>]) -> f64 {
        self.predict_with_mode(tables, InferenceMode::F32)
    }

    /// [`ComputeCostModel::predict`] on an explicit numeric path.
    pub fn predict_with_mode(&self, tables: &[Vec<f32>], mode: InferenceMode) -> f64 {
        self.predict_batch_with_mode(&[tables], mode)[0]
    }

    /// Predicts the fused-kernel cost of many table combinations with two
    /// forward passes total: every table row of every set goes through the
    /// shared encoder as one matrix, each set's rows are sum-pooled, and
    /// the pooled rows go through the head as one matrix.
    ///
    /// Both forward passes and the pooling accumulate in the same order as
    /// the single-set path, so each result is **bit-identical** to calling
    /// [`ComputeCostModel::predict`] on that set alone. All intermediates
    /// live in thread-local scratch — the hot path allocates only the
    /// returned `Vec` after warm-up.
    pub fn predict_batch<S: AsRef<[Vec<f32>]>>(&self, sets: &[S]) -> Vec<f64> {
        self.predict_batch_with_mode(sets, InferenceMode::F32)
    }

    /// [`ComputeCostModel::predict_batch`] on an explicit numeric path.
    /// [`InferenceMode::Int8`] runs both MLPs through their quantized
    /// snapshots (approximate, inference-only).
    pub fn predict_batch_with_mode<S: AsRef<[Vec<f32>]>>(
        &self,
        sets: &[S],
        mode: InferenceMode,
    ) -> Vec<f64> {
        if sets.is_empty() {
            return Vec::new();
        }
        COMPUTE_SCRATCH.with(|scratch| {
            let s = &mut *scratch.borrow_mut();
            let total_rows: usize = sets.iter().map(|s| s.as_ref().len()).sum();
            s.pooled.reset(sets.len(), ENCODER_OUT);
            if total_rows > 0 {
                s.x.reset(total_rows, self.encoder.input_dim());
                let mut r = 0;
                for set in sets {
                    for row in set.as_ref() {
                        s.x.row_mut(r).copy_from_slice(row);
                        r += 1;
                    }
                }
                let encoded: &Matrix = match mode {
                    InferenceMode::F32 => self.encoder.forward_scratch(&s.x, &mut s.enc),
                    InferenceMode::Int8 => {
                        self.quantized().encoder.forward_scratch(&s.x, &mut s.enc)
                    }
                };
                let mut r = 0;
                for (i, set) in sets.iter().enumerate() {
                    let pooled = s.pooled.row_mut(i);
                    for _ in 0..set.as_ref().len() {
                        for (p, &v) in pooled.iter_mut().zip(encoded.row(r)) {
                            *p += v;
                        }
                        r += 1;
                    }
                }
            }
            let y: &Matrix = match mode {
                InferenceMode::F32 => self.head.forward_scratch(&s.pooled, &mut s.head),
                InferenceMode::Int8 => self
                    .quantized()
                    .head
                    .forward_scratch(&s.pooled, &mut s.head),
            };
            (0..sets.len()).map(|i| f64::from(y.get(i, 0))).collect()
        })
    }

    /// Width of one per-table encoding (the pooled-representation
    /// dimension fed to the head).
    pub fn encoding_dim(&self) -> usize {
        self.head.input_dim()
    }

    /// Runs only the shared encoder over per-table feature rows, returning
    /// one encoding row per input row.
    ///
    /// Encoder rows are independent of batch composition, so each returned
    /// row is bit-identical to the corresponding row of any other forward
    /// containing that table — the property the search's per-table
    /// encoding cache relies on.
    pub fn encode_tables_with_mode(
        &self,
        features: &[Vec<f32>],
        mode: InferenceMode,
    ) -> Vec<Vec<f32>> {
        if features.is_empty() {
            return Vec::new();
        }
        COMPUTE_SCRATCH.with(|scratch| {
            let s = &mut *scratch.borrow_mut();
            s.x.reset(features.len(), self.encoder.input_dim());
            for (i, row) in features.iter().enumerate() {
                s.x.row_mut(i).copy_from_slice(row);
            }
            let encoded: &Matrix = match mode {
                InferenceMode::F32 => self.encoder.forward_scratch(&s.x, &mut s.enc),
                InferenceMode::Int8 => self.quantized().encoder.forward_scratch(&s.x, &mut s.enc),
            };
            (0..features.len())
                .map(|i| encoded.row(i).to_vec())
                .collect()
        })
    }

    /// Runs only the head over already sum-pooled encoding rows, returning
    /// one cost per row. Combined with [`ComputeCostModel::encode_tables_with_mode`]
    /// and a left-to-right fold of the encodings, this reproduces
    /// [`ComputeCostModel::predict_batch_with_mode`] bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `pooled`'s width differs from
    /// [`ComputeCostModel::encoding_dim`].
    pub fn head_costs_with_mode(&self, pooled: &Matrix, mode: InferenceMode) -> Vec<f64> {
        assert_eq!(
            pooled.cols(),
            self.encoding_dim(),
            "pooled rows have the wrong encoding width"
        );
        COMPUTE_SCRATCH.with(|scratch| {
            let s = &mut *scratch.borrow_mut();
            let y: &Matrix = match mode {
                InferenceMode::F32 => self.head.forward_scratch(pooled, &mut s.head),
                InferenceMode::Int8 => self.quantized().head.forward_scratch(pooled, &mut s.head),
            };
            (0..pooled.rows()).map(|i| f64::from(y.get(i, 0))).collect()
        })
    }

    /// Mean squared error over a dataset (batched inference).
    pub fn evaluate_mse(&self, data: &ComputeDataset) -> f32 {
        if data.is_empty() {
            return f32::NAN;
        }
        let sets: Vec<&[Vec<f32>]> = data.samples.iter().map(|s| s.tables.as_slice()).collect();
        let preds = self.predict_batch(&sets);
        let se: f64 = preds
            .iter()
            .zip(&data.samples)
            .map(|(p, s)| {
                let err = p - f64::from(s.cost_ms);
                err * err
            })
            .sum();
        (se / data.len() as f64) as f32
    }

    /// Trains the model on `data` (80/10/10 split from `seed`), keeping the
    /// best-on-validation checkpoint. Mirrors the paper's protocol:
    /// mini-batch Adam on an MSE loss.
    ///
    /// Per-sample gradients are pure functions of the current weights, so
    /// they fan out over a [`WorkPool`] sized by [`TrainSettings::threads`]
    /// while the mini-batch accumulation stays a serial in-order fold —
    /// trained weights are bit-identical at any thread count.
    pub fn train(
        &mut self,
        data: &ComputeDataset,
        settings: &TrainSettings,
        seed: u64,
    ) -> ComputeTrainReport {
        let (train, valid, test) = data.split(seed);
        self.fit_partitions(&train, &valid, &test, settings, false, seed)
    }

    /// Fine-tunes the model on explicit train/valid partitions (no internal
    /// split), keeping the best-on-validation checkpoint. The reported
    /// `test_mse` is the selected checkpoint's MSE on `valid`.
    ///
    /// With `freeze_encoder` the shared table encoder is left **bitwise
    /// untouched** — only the head adapts. That preserves the per-table
    /// encoding geometry the search's encoding cache and DeepSets pooling
    /// rely on, while the head re-calibrates to observed costs.
    ///
    /// Returns an unchanged-model report when `train` is empty. Same
    /// determinism contract as [`ComputeCostModel::train`]: bit-identical
    /// weights at any thread count.
    pub fn fine_tune(
        &mut self,
        train: &ComputeDataset,
        valid: &ComputeDataset,
        settings: &TrainSettings,
        freeze_encoder: bool,
        seed: u64,
    ) -> ComputeTrainReport {
        self.fit_partitions(train, valid, valid, settings, freeze_encoder, seed)
    }

    fn fit_partitions(
        &mut self,
        train: &ComputeDataset,
        valid: &ComputeDataset,
        test: &ComputeDataset,
        settings: &TrainSettings,
        freeze_encoder: bool,
        seed: u64,
    ) -> ComputeTrainReport {
        use rand::Rng;
        use rand::{rngs::StdRng, SeedableRng};

        if train.is_empty() {
            return ComputeTrainReport {
                train_mse: f32::NAN,
                valid_mse: self.evaluate_mse(valid),
                test_mse: self.evaluate_mse(test),
                valid_history: Vec::new(),
            };
        }
        let pool = WorkPool::new(settings.threads);
        let mut adam_enc = Adam::new(&self.encoder, settings.learning_rate);
        let mut adam_head = Adam::new(&self.head, settings.learning_rate);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7A57);

        let n = train.len().max(1);
        let batch_size = settings.batch_size.clamp(1, n);
        let mut best = (self.encoder.clone(), self.head.clone());
        let mut best_valid = f32::INFINITY;
        let mut valid_history = Vec::with_capacity(settings.epochs);
        let mut order: Vec<usize> = (0..n).collect();

        for _epoch in 0..settings.epochs {
            for i in (1..n).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(batch_size) {
                let per_sample = pool.map(chunk, |&idx| self.sample_gradients(&train.samples[idx]));
                let mut grad_enc = Gradients::zeros_like(&self.encoder);
                let mut grad_head = Gradients::zeros_like(&self.head);
                let scale = 1.0 / chunk.len() as f32;
                for (g_enc, g_head) in &per_sample {
                    if let Some(g) = g_enc {
                        grad_enc.accumulate(g, scale);
                    }
                    grad_head.accumulate(g_head, scale);
                }
                // Exact encoder freeze: equivalent to zeroing the encoder
                // gradients (Adam with perpetually-zero gradients keeps
                // zero moments, so the update is exactly zero) — skipping
                // the step makes the bitwise invariant free.
                if !freeze_encoder {
                    adam_enc.step(&mut self.encoder, &grad_enc);
                }
                adam_head.step(&mut self.head, &grad_head);
            }
            let valid_mse = self.evaluate_mse(valid);
            valid_history.push(valid_mse);
            if valid_mse < best_valid {
                best_valid = valid_mse;
                best = (self.encoder.clone(), self.head.clone());
            }
        }

        self.encoder = best.0;
        self.head = best.1;
        self.quant = OnceLock::new();
        ComputeTrainReport {
            train_mse: self.evaluate_mse(train),
            valid_mse: best_valid,
            test_mse: self.evaluate_mse(test),
            valid_history,
        }
    }

    /// Forward + backward of one sample under the squared-error loss,
    /// returning `(encoder grads (None when the sample has no tables),
    /// head grads)`.
    fn sample_gradients(&self, sample: &ComputeSample) -> (Option<Gradients>, Gradients) {
        if sample.tables.is_empty() {
            let pooled = Matrix::zeros(1, ENCODER_OUT);
            let (pred, head_cache) = self.head.forward_cached(&pooled);
            let dy = Matrix::from_rows([vec![2.0 * (pred.get(0, 0) - sample.cost_ms)]]);
            let (_, g_head) = self.head.backward(&head_cache, &dy);
            return (None, g_head);
        }
        let x = Matrix::from_rows(&sample.tables);
        let (encoded, enc_cache) = self.encoder.forward_cached(&x);
        let pooled = Matrix::from_rows([encoded.sum_rows()]);
        let (pred, head_cache) = self.head.forward_cached(&pooled);
        let err = pred.get(0, 0) - sample.cost_ms;
        let dy = Matrix::from_rows([vec![2.0 * err]]);
        let (d_pooled, g_head) = self.head.backward(&head_cache, &dy);
        // Sum pooling broadcasts the gradient to every table's encoding.
        let d_encoded = Matrix::from_rows(vec![d_pooled.row(0).to_vec(); sample.tables.len()]);
        let (_, g_enc) = self.encoder.backward(&enc_cache, &d_encoded);
        (Some(g_enc), g_head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect_compute_data, CollectConfig};
    use nshard_data::TablePool;
    use nshard_sim::KernelParams;

    fn small_dataset(n: usize) -> ComputeDataset {
        let pool = TablePool::synthetic_dlrm(40, 5);
        let cfg = CollectConfig {
            compute_samples: n,
            ..CollectConfig::smoke()
        };
        collect_compute_data(&pool, &KernelParams::rtx_2080_ti(), &cfg, 1)
    }

    #[test]
    fn untrained_model_predicts_finite() {
        let model = ComputeCostModel::new(0);
        let data = small_dataset(5);
        for s in &data.samples {
            assert!(model.predict(&s.tables).is_finite());
        }
        assert!(model.predict(&[]).is_finite());
    }

    #[test]
    fn prediction_is_permutation_invariant() {
        let model = ComputeCostModel::new(3);
        let data = small_dataset(1);
        let mut tables = data.samples[0].tables.clone();
        let a = model.predict(&tables);
        tables.reverse();
        let b = model.predict(&tables);
        assert!((a - b).abs() < 1e-4, "{a} vs {b}");
    }

    #[test]
    fn batch_prediction_is_bit_identical_to_single() {
        let model = ComputeCostModel::new(11);
        let data = small_dataset(6);
        let mut sets: Vec<Vec<Vec<f32>>> = data.samples.iter().map(|s| s.tables.clone()).collect();
        sets.push(Vec::new()); // empty combination rides along
        let batch = model.predict_batch(&sets);
        assert_eq!(batch.len(), sets.len());
        for (s, &b) in sets.iter().zip(&batch) {
            let single = model.predict(s);
            assert_eq!(single.to_bits(), b.to_bits(), "batch diverged on {s:?}");
        }
        assert!(model.predict_batch::<Vec<Vec<f32>>>(&[]).is_empty());
    }

    #[test]
    fn decomposed_encode_fold_head_matches_predict() {
        // encode → left-fold → head must reproduce the fused forward bit
        // for bit on both numeric paths (the encoding cache's contract).
        let model = ComputeCostModel::new(5);
        let data = small_dataset(4);
        for mode in [InferenceMode::F32, InferenceMode::Int8] {
            for s in &data.samples {
                let encoded = model.encode_tables_with_mode(&s.tables, mode);
                assert_eq!(encoded.len(), s.tables.len());
                let mut pooled = Matrix::zeros(1, model.encoding_dim());
                for row in &encoded {
                    for (p, &v) in pooled.row_mut(0).iter_mut().zip(row) {
                        *p += v;
                    }
                }
                let via_parts = model.head_costs_with_mode(&pooled, mode)[0];
                let direct = model.predict_with_mode(&s.tables, mode);
                assert_eq!(
                    via_parts.to_bits(),
                    direct.to_bits(),
                    "decomposed path diverged in mode {mode:?}"
                );
            }
        }
        assert!(model
            .encode_tables_with_mode(&[], InferenceMode::F32)
            .is_empty());
    }

    #[test]
    fn training_reduces_mse() {
        let data = small_dataset(400);
        let mut model = ComputeCostModel::new(7);
        let before = model.evaluate_mse(&data);
        let report = model.train(
            &data,
            &TrainSettings {
                epochs: 30,
                batch_size: 64,
                learning_rate: 1e-3,
                ..TrainSettings::default()
            },
            9,
        );
        let after = model.evaluate_mse(&data);
        assert!(
            after < before / 2.0,
            "MSE did not improve enough: {before} -> {after}"
        );
        assert!(report.test_mse.is_finite());
        assert_eq!(report.valid_history.len(), 30);
    }

    #[test]
    fn trained_model_learns_cost_ordering() {
        // A trained model should rank a heavy combination above a light one.
        let data = small_dataset(600);
        let mut model = ComputeCostModel::new(1);
        model.train(
            &data,
            &TrainSettings {
                epochs: 40,
                batch_size: 64,
                learning_rate: 1e-3,
                ..TrainSettings::default()
            },
            2,
        );
        // Pick the lightest and heaviest training samples by label.
        let min = data
            .samples
            .iter()
            .min_by(|a, b| a.cost_ms.partial_cmp(&b.cost_ms).unwrap())
            .unwrap();
        let max = data
            .samples
            .iter()
            .max_by(|a, b| a.cost_ms.partial_cmp(&b.cost_ms).unwrap())
            .unwrap();
        assert!(model.predict(&max.tables) > model.predict(&min.tables));
    }

    #[test]
    fn training_is_deterministic() {
        let data = small_dataset(100);
        let mut m1 = ComputeCostModel::new(4);
        let mut m2 = ComputeCostModel::new(4);
        let r1 = m1.train(
            &data,
            &TrainSettings {
                epochs: 5,
                batch_size: 32,
                learning_rate: 1e-3,
                ..TrainSettings::default()
            },
            6,
        );
        let r2 = m2.train(
            &data,
            &TrainSettings {
                epochs: 5,
                batch_size: 32,
                learning_rate: 1e-3,
                ..TrainSettings::default()
            },
            6,
        );
        assert_eq!(r1, r2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn linear_model_underfits_the_nonlinear_costs() {
        // The paper's §4.2 claim: a linear model cannot capture the cost
        // non-linearity. Train both on identical data and compare.
        let data = small_dataset(500);
        let mut nn = ComputeCostModel::new(3);
        let mut linear = ComputeCostModel::linear(3);
        let nn_report = nn.train(
            &data,
            &TrainSettings {
                epochs: 30,
                batch_size: 64,
                learning_rate: 1e-3,
                ..TrainSettings::default()
            },
            4,
        );
        let lin_report = linear.train(
            &data,
            &TrainSettings {
                epochs: 30,
                batch_size: 64,
                learning_rate: 1e-3,
                ..TrainSettings::default()
            },
            4,
        );
        assert!(
            nn_report.test_mse < lin_report.test_mse,
            "nn {} should beat linear {}",
            nn_report.test_mse,
            lin_report.test_mse
        );
    }

    #[test]
    fn fine_tune_with_frozen_encoder_keeps_encoder_bitwise() {
        let data = small_dataset(200);
        let mut model = ComputeCostModel::new(7);
        model.train(
            &data,
            &TrainSettings {
                epochs: 10,
                batch_size: 64,
                learning_rate: 1e-3,
                ..TrainSettings::default()
            },
            9,
        );
        let before = model.clone();
        let (train, valid, _) = data.split(13);
        let report = model.fine_tune(
            &train,
            &valid,
            &TrainSettings {
                epochs: 5,
                batch_size: 32,
                learning_rate: 2e-4,
                ..TrainSettings::default()
            },
            true,
            17,
        );
        assert!(report.valid_mse.is_finite());
        assert_eq!(report.valid_history.len(), 5);
        // Frozen encoder is untouched; the head is free to move.
        assert_eq!(before.encoder, model.encoder);
    }

    #[test]
    fn fine_tune_is_deterministic_and_improves_on_shifted_labels() {
        let data = small_dataset(300);
        // Shift the cost regime: the "observed" world is 1.7× the
        // collected labels, as if the hardware drifted.
        let shifted = ComputeDataset {
            samples: data
                .samples
                .iter()
                .map(|s| ComputeSample {
                    tables: s.tables.clone(),
                    cost_ms: s.cost_ms * 1.7,
                })
                .collect(),
        };
        let settings = TrainSettings {
            epochs: 12,
            batch_size: 64,
            learning_rate: 1e-3,
            ..TrainSettings::default()
        };
        let mut base = ComputeCostModel::new(2);
        base.train(&data, &settings, 3);
        let before = base.evaluate_mse(&shifted);
        let (train, valid, _) = shifted.split(5);
        let ft_settings = TrainSettings {
            epochs: 15,
            batch_size: 32,
            learning_rate: 5e-4,
            ..TrainSettings::default()
        };
        let mut a = base.clone();
        let ra = a.fine_tune(&train, &valid, &ft_settings, false, 11);
        let mut b = base.clone();
        let rb = b.fine_tune(&train, &valid, &ft_settings, false, 11);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
        let after = a.evaluate_mse(&shifted);
        assert!(
            after < before / 2.0,
            "fine-tune did not adapt to the shifted regime: {before} -> {after}"
        );
    }

    #[test]
    fn fine_tune_on_empty_train_is_a_no_op() {
        let data = small_dataset(20);
        let mut model = ComputeCostModel::new(4);
        let before = model.clone();
        let empty = ComputeDataset {
            samples: Vec::new(),
        };
        let report = model.fine_tune(&empty, &data, &TrainSettings::smoke(), false, 1);
        assert_eq!(before, model);
        assert!(report.valid_history.is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let model = ComputeCostModel::new(2);
        let json = serde_json::to_string(&model).unwrap();
        let back: ComputeCostModel = serde_json::from_str(&json).unwrap();
        assert_eq!(model, back);
    }
}
