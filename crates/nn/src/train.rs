//! Mini-batch training loop with train/valid/test splits.
//!
//! Mirrors the paper's training protocol (Appendix C/F): 80/10/10 split,
//! batch size 512, Adam at lr 0.001, a fixed number of epochs, keeping the
//! checkpoint with the best validation MSE.
//!
//! ## Data-parallel gradients
//!
//! Each mini-batch is decomposed into fixed-width row shards of
//! [`GRAD_SHARD_ROWS`]; workers compute per-shard gradients against the
//! whole batch's element count, a fixed-order tree reduction
//! ([`crate::Gradients::tree_reduce`]) sums them, and a single Adam step
//! applies the sum. The shard decomposition and the reduction order are
//! pure functions of the batch — never of the thread count — so trained
//! weights are **bit-identical** at any [`TrainConfig::threads`] setting,
//! including the serial `threads = 1`.

use nshard_pool::WorkPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::adam::Adam;
use crate::loss::{mse, mse_grad_scaled};
use crate::mlp::{Gradients, Mlp};
use crate::tensor::Matrix;

/// Width (in dataset rows) of one gradient shard. A mini-batch of 512 rows
/// becomes 8 shards. The constant is part of the trainer's numerical
/// contract: changing it re-associates the gradient sum and therefore
/// changes trained weights (deterministically so).
pub const GRAD_SHARD_ROWS: usize = 64;

/// A supervised regression dataset: feature rows `x` and target rows `y`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "DatasetRepr")]
pub struct Dataset {
    x: Matrix,
    y: Matrix,
}

/// Raw serialized form of [`Dataset`]; conversion re-validates the row
/// counts so a hand-edited file cannot produce an inconsistent dataset.
#[derive(Deserialize)]
struct DatasetRepr {
    x: Matrix,
    y: Matrix,
}

impl TryFrom<DatasetRepr> for Dataset {
    type Error = String;

    fn try_from(repr: DatasetRepr) -> Result<Self, Self::Error> {
        Dataset::new(repr.x, repr.y)
            .ok_or_else(|| "dataset features and targets must have equal, non-zero rows".into())
    }
}

impl Dataset {
    /// Creates a dataset; `x` and `y` must have the same number of rows.
    ///
    /// Returns `None` when the row counts differ or the dataset is empty.
    pub fn new(x: Matrix, y: Matrix) -> Option<Self> {
        if x.rows() != y.rows() || x.rows() == 0 {
            return None;
        }
        Some(Self { x, y })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// Whether the dataset is empty (never true for a constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }

    /// The features.
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// The targets.
    pub fn y(&self) -> &Matrix {
        &self.y
    }

    /// Selects a row subset as a new dataset.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(indices),
            y: self.y.select_rows(indices),
        }
    }

    /// Shuffled 80/10/10 split, seeded.
    pub fn split(&self, seed: u64) -> Split {
        self.split_with_ratios(0.8, 0.1, seed)
    }

    /// Shuffled split with explicit train/valid ratios (test gets the rest).
    /// Every part receives at least one sample when the dataset is large
    /// enough (≥ 3 samples).
    pub fn split_with_ratios(&self, train: f64, valid: f64, seed: u64) -> Split {
        let n = self.len();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        let mut n_train = ((n as f64) * train).round() as usize;
        let mut n_valid = ((n as f64) * valid).round() as usize;
        if n >= 3 {
            n_train = n_train.clamp(1, n - 2);
            n_valid = n_valid.clamp(1, n - n_train - 1);
        } else {
            n_train = n_train.min(n);
            n_valid = n_valid.min(n - n_train);
        }
        let train_set = self.select(&idx[..n_train]);
        let valid_set = self.select(&idx[n_train..n_train + n_valid]);
        let test_set = self.select(&idx[n_train + n_valid..]);
        Split {
            train: train_set,
            valid: valid_set,
            test: test_set,
        }
    }
}

/// The three parts of a dataset split.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Training partition.
    pub train: Dataset,
    /// Validation partition (model selection).
    pub valid: Dataset,
    /// Held-out test partition (reported MSE).
    pub test: Dataset,
}

/// Trainer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training partition.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 512).
    pub batch_size: usize,
    /// Adam learning rate (the paper uses 0.001).
    pub learning_rate: f32,
    /// Worker threads for per-shard gradient computation; `0` = auto (the
    /// `NSHARD_THREADS` environment variable, then available parallelism,
    /// via [`nshard_pool::resolve_threads`]). Trained weights are
    /// bit-identical at any setting.
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            batch_size: 512,
            learning_rate: 1e-3,
            threads: 0,
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Final MSE on the training partition (best-validation checkpoint).
    pub train_mse: f32,
    /// Best validation MSE observed.
    pub valid_mse: f32,
    /// MSE of the selected checkpoint on the held-out test partition.
    pub test_mse: f32,
    /// Number of epochs actually run.
    pub epochs_run: usize,
    /// Per-epoch validation MSE history.
    pub valid_history: Vec<f32>,
}

/// Mini-batch MSE trainer with best-on-validation checkpointing.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    /// Layer indices whose gradients are zeroed before every optimizer
    /// step (exact freeze; see [`Gradients::zero_layers`]).
    frozen_layers: Vec<usize>,
    /// The best model found (set by [`Trainer::fit`]).
    best_model: Option<Mlp>,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Self {
            config,
            frozen_layers: Vec::new(),
            best_model: None,
        }
    }

    /// Freezes the given layer indices for subsequent fits: their gradients
    /// are zeroed before every Adam step, which leaves the layer parameters
    /// bitwise unchanged (zero gradients keep Adam's moments at zero, so
    /// the update is exactly zero).
    pub fn with_frozen_layers(mut self, layers: Vec<usize>) -> Self {
        self.frozen_layers = layers;
        self
    }

    /// The frozen layer indices.
    pub fn frozen_layers(&self) -> &[usize] {
        &self.frozen_layers
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// The best model from the last [`Trainer::fit`] call, if any.
    pub fn best_model(&self) -> Option<&Mlp> {
        self.best_model.as_ref()
    }

    /// Consumes the trainer and returns the best model.
    pub fn into_best_model(self) -> Option<Mlp> {
        self.best_model
    }

    /// Trains `mlp` on `dataset` (80/10/10 split derived from `seed`) and
    /// returns the report. The best-on-validation checkpoint is kept and
    /// used for the reported train/test MSE.
    pub fn fit(&mut self, mlp: Mlp, dataset: &Dataset, seed: u64) -> TrainReport {
        let split = dataset.split(seed);
        self.fit_split(mlp, &split, seed)
    }

    /// Trains on an explicit split.
    pub fn fit_split(&mut self, mut mlp: Mlp, split: &Split, seed: u64) -> TrainReport {
        let pool = WorkPool::new(self.config.threads);
        let mut adam = Adam::new(&mlp, self.config.learning_rate);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
        let n = split.train.len();
        let batch = self.config.batch_size.clamp(1, n);

        let mut best = mlp.clone();
        let mut best_valid = f32::INFINITY;
        let mut valid_history = Vec::with_capacity(self.config.epochs);

        let mut order: Vec<usize> = (0..n).collect();
        for _epoch in 0..self.config.epochs {
            // Shuffle sample order.
            for i in (1..n).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(batch) {
                let mut grads = batch_gradients(&mlp, &split.train, chunk, &pool);
                if !self.frozen_layers.is_empty() {
                    grads.zero_layers(&self.frozen_layers);
                }
                adam.step(&mut mlp, &grads);
            }
            let valid_mse = mse(&mlp.forward(split.valid.x()), split.valid.y());
            valid_history.push(valid_mse);
            if valid_mse < best_valid {
                best_valid = valid_mse;
                best = mlp.clone();
            }
        }

        let train_mse = mse(&best.forward(split.train.x()), split.train.y());
        let test_mse = if !split.test.is_empty() {
            mse(&best.forward(split.test.x()), split.test.y())
        } else {
            f32::NAN
        };
        self.best_model = Some(best);
        TrainReport {
            train_mse,
            valid_mse: best_valid,
            test_mse,
            epochs_run: self.config.epochs,
            valid_history,
        }
    }
}

/// Computes the gradient of one mini-batch (`chunk` of row indices into
/// `train`) by fanning fixed-width row shards over `pool` and summing the
/// per-shard gradients with [`Gradients::tree_reduce`].
///
/// Each shard's upstream gradient is scaled by the *whole* batch's element
/// count ([`mse_grad_scaled`]), so the reduced sum is the mini-batch MSE
/// gradient. Both the shard boundaries ([`GRAD_SHARD_ROWS`]) and the
/// reduction order depend only on the batch itself, making the result
/// bit-identical at any worker count.
fn batch_gradients(mlp: &Mlp, train: &Dataset, chunk: &[usize], pool: &WorkPool) -> Gradients {
    let total_elems = chunk.len() * train.y().cols();
    let shards: Vec<&[usize]> = chunk.chunks(GRAD_SHARD_ROWS).collect();
    let per_shard = pool.map(&shards, |shard| {
        let xb = train.x().select_rows(shard);
        let yb = train.y().select_rows(shard);
        let (pred, cache) = mlp.forward_cached(&xb);
        let dy = mse_grad_scaled(&pred, &yb, total_elems);
        let (_, grads) = mlp.backward(&cache, &dy);
        grads
    });
    Gradients::tree_reduce(per_shard)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_dataset(n: usize) -> Dataset {
        let xs: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![(i % 17) as f32 / 17.0, (i % 5) as f32 / 5.0])
            .collect();
        let ys: Vec<Vec<f32>> = xs.iter().map(|r| vec![3.0 * r[0] + r[1] - 0.5]).collect();
        Dataset::new(Matrix::from_rows(xs), Matrix::from_rows(ys)).unwrap()
    }

    #[test]
    fn split_partitions_everything() {
        let d = linear_dataset(100);
        let s = d.split(1);
        assert_eq!(s.train.len() + s.valid.len() + s.test.len(), 100);
        assert_eq!(s.train.len(), 80);
        assert_eq!(s.valid.len(), 10);
    }

    #[test]
    fn split_is_deterministic() {
        let d = linear_dataset(50);
        assert_eq!(d.split(3).train, d.split(3).train);
        assert_ne!(d.split(3).train, d.split(4).train);
    }

    #[test]
    fn trainer_fits_linear_function() {
        let d = linear_dataset(300);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 150,
            batch_size: 32,
            learning_rate: 3e-3,
            ..TrainConfig::default()
        });
        let report = trainer.fit(Mlp::new(2, &[16], 1, 0), &d, 7);
        assert!(report.test_mse < 0.02, "test MSE {}", report.test_mse);
        assert!(trainer.best_model().is_some());
        assert_eq!(report.valid_history.len(), 150);
    }

    #[test]
    fn validation_mse_improves_over_training() {
        let d = linear_dataset(200);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 50,
            batch_size: 32,
            learning_rate: 3e-3,
            ..TrainConfig::default()
        });
        let report = trainer.fit(Mlp::new(2, &[8], 1, 1), &d, 3);
        let first = report.valid_history[0];
        let last = *report.valid_history.last().unwrap();
        assert!(
            last < first,
            "validation MSE did not improve: {first} -> {last}"
        );
    }

    #[test]
    fn mismatched_dataset_is_rejected() {
        assert!(Dataset::new(Matrix::zeros(3, 2), Matrix::zeros(2, 1)).is_none());
        assert!(Dataset::new(Matrix::zeros(0, 2), Matrix::zeros(0, 1)).is_none());
    }

    #[test]
    fn tiny_datasets_split_without_panicking() {
        let d = linear_dataset(3);
        let s = d.split(0);
        assert_eq!(s.train.len() + s.valid.len() + s.test.len(), 3);
        assert!(!s.train.is_empty());
    }

    #[test]
    fn serde_round_trip_and_validation() {
        let d = linear_dataset(10);
        let json = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
        // Tampered row counts are rejected at deserialization time.
        let bad =
            r#"{"x":{"rows":2,"cols":1,"data":[1.0,2.0]},"y":{"rows":1,"cols":1,"data":[3.0]}}"#;
        assert!(serde_json::from_str::<Dataset>(bad).is_err());
    }

    #[test]
    fn fit_is_deterministic() {
        let d = linear_dataset(100);
        let cfg = TrainConfig {
            epochs: 10,
            batch_size: 16,
            learning_rate: 1e-3,
            ..TrainConfig::default()
        };
        let r1 = Trainer::new(cfg).fit(Mlp::new(2, &[8], 1, 2), &d, 5);
        let r2 = Trainer::new(cfg).fit(Mlp::new(2, &[8], 1, 2), &d, 5);
        assert_eq!(r1, r2);
    }

    #[test]
    fn fit_is_bit_identical_across_thread_counts() {
        // Batch of 256 rows = 4 shards of GRAD_SHARD_ROWS, so the parallel
        // path genuinely fans out and must still match the serial run.
        let d = linear_dataset(320);
        let base = TrainConfig {
            epochs: 8,
            batch_size: 256,
            learning_rate: 1e-3,
            threads: 1,
        };
        let serial = Trainer::new(base).fit(Mlp::new(2, &[16], 1, 9), &d, 11);
        let serial_model = {
            let mut t = Trainer::new(base);
            t.fit(Mlp::new(2, &[16], 1, 9), &d, 11);
            t.into_best_model().unwrap()
        };
        for threads in [2, 3, 8] {
            let mut t = Trainer::new(TrainConfig { threads, ..base });
            let report = t.fit(Mlp::new(2, &[16], 1, 9), &d, 11);
            assert_eq!(report, serial, "report diverged at {threads} threads");
            assert_eq!(
                t.into_best_model().unwrap(),
                serial_model,
                "weights diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn trainer_overfits_tiny_dataset() {
        // Convergence smoke: 32 samples, capacity to memorize them, and
        // enough epochs must drive the training MSE to ~zero.
        let d = linear_dataset(32);
        let split = Split {
            train: d.clone(),
            valid: d.clone(),
            test: d.clone(),
        };
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 800,
            batch_size: 32,
            learning_rate: 5e-3,
            ..TrainConfig::default()
        });
        let report = trainer.fit_split(Mlp::new(2, &[32], 1, 0), &split, 13);
        assert!(
            report.train_mse < 1e-4,
            "failed to overfit 32 samples: train MSE {}",
            report.train_mse
        );
    }

    #[test]
    fn frozen_layers_are_bitwise_untouched() {
        let d = linear_dataset(120);
        let init = Mlp::new(2, &[8, 8], 1, 6);
        let cfg = TrainConfig {
            epochs: 12,
            batch_size: 32,
            learning_rate: 3e-3,
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(cfg).with_frozen_layers(vec![0]);
        trainer.fit(init.clone(), &d, 9);
        let fitted = trainer.into_best_model().unwrap();
        // Layer 0 never moved; the unfrozen layers did.
        assert_eq!(init.layers()[0], fitted.layers()[0]);
        assert_ne!(init.layers()[1], fitted.layers()[1]);
        // Freezing everything is an exact no-op on all parameters.
        let mut all = Trainer::new(cfg).with_frozen_layers(vec![0, 1, 2]);
        all.fit(init.clone(), &d, 9);
        assert_eq!(init, all.into_best_model().unwrap());
    }

    #[test]
    fn best_checkpoint_is_min_of_validation_history() {
        let d = linear_dataset(200);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 60,
            batch_size: 32,
            learning_rate: 3e-3,
            ..TrainConfig::default()
        });
        let report = trainer.fit(Mlp::new(2, &[8], 1, 4), &d, 21);
        let min = report
            .valid_history
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min);
        assert_eq!(
            report.valid_mse, min,
            "best-on-validation checkpoint must track the history minimum"
        );
    }

    proptest::proptest! {
        #[test]
        fn split_with_ratios_partitions_any_dataset(
            n in 1usize..200,
            train in 0.0f64..1.0,
            valid in 0.0f64..1.0,
            seed in 0u64..1000,
        ) {
            let d = linear_dataset(n);
            let s = d.split_with_ratios(train, valid, seed);
            // Exhaustive: every sample lands in exactly one part.
            proptest::prop_assert_eq!(s.train.len() + s.valid.len() + s.test.len(), n);
            // Disjoint: recombining the parts recovers the multiset of rows.
            let mut rows: Vec<Vec<u32>> = Vec::with_capacity(n);
            for part in [&s.train, &s.valid, &s.test] {
                for r in 0..part.len() {
                    let xr = part.x().row(r);
                    let yr = part.y().row(r);
                    rows.push(
                        xr.iter().chain(yr.iter()).map(|v| v.to_bits()).collect(),
                    );
                }
            }
            rows.sort_unstable();
            let mut expected: Vec<Vec<u32>> = (0..n)
                .map(|r| {
                    d.x().row(r)
                        .iter()
                        .chain(d.y().row(r).iter())
                        .map(|v| v.to_bits())
                        .collect()
                })
                .collect();
            expected.sort_unstable();
            proptest::prop_assert_eq!(rows, expected);
            // Non-degenerate parts whenever the dataset can afford them.
            if n >= 3 {
                proptest::prop_assert!(!s.train.is_empty());
                proptest::prop_assert!(!s.valid.is_empty());
                proptest::prop_assert!(!s.test.is_empty());
            }
        }
    }
}
