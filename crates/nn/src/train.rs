//! Mini-batch training loop with train/valid/test splits.
//!
//! Mirrors the paper's training protocol (Appendix C/F): 80/10/10 split,
//! batch size 512, Adam at lr 0.001, a fixed number of epochs, keeping the
//! checkpoint with the best validation MSE.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::adam::Adam;
use crate::loss::{mse, mse_grad};
use crate::mlp::Mlp;
use crate::tensor::Matrix;

/// A supervised regression dataset: feature rows `x` and target rows `y`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "DatasetRepr")]
pub struct Dataset {
    x: Matrix,
    y: Matrix,
}

/// Raw serialized form of [`Dataset`]; conversion re-validates the row
/// counts so a hand-edited file cannot produce an inconsistent dataset.
#[derive(Deserialize)]
struct DatasetRepr {
    x: Matrix,
    y: Matrix,
}

impl TryFrom<DatasetRepr> for Dataset {
    type Error = String;

    fn try_from(repr: DatasetRepr) -> Result<Self, Self::Error> {
        Dataset::new(repr.x, repr.y)
            .ok_or_else(|| "dataset features and targets must have equal, non-zero rows".into())
    }
}

impl Dataset {
    /// Creates a dataset; `x` and `y` must have the same number of rows.
    ///
    /// Returns `None` when the row counts differ or the dataset is empty.
    pub fn new(x: Matrix, y: Matrix) -> Option<Self> {
        if x.rows() != y.rows() || x.rows() == 0 {
            return None;
        }
        Some(Self { x, y })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// Whether the dataset is empty (never true for a constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }

    /// The features.
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// The targets.
    pub fn y(&self) -> &Matrix {
        &self.y
    }

    /// Selects a row subset as a new dataset.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(indices),
            y: self.y.select_rows(indices),
        }
    }

    /// Shuffled 80/10/10 split, seeded.
    pub fn split(&self, seed: u64) -> Split {
        self.split_with_ratios(0.8, 0.1, seed)
    }

    /// Shuffled split with explicit train/valid ratios (test gets the rest).
    /// Every part receives at least one sample when the dataset is large
    /// enough (≥ 3 samples).
    pub fn split_with_ratios(&self, train: f64, valid: f64, seed: u64) -> Split {
        let n = self.len();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        let mut n_train = ((n as f64) * train).round() as usize;
        let mut n_valid = ((n as f64) * valid).round() as usize;
        if n >= 3 {
            n_train = n_train.clamp(1, n - 2);
            n_valid = n_valid.clamp(1, n - n_train - 1);
        } else {
            n_train = n_train.min(n);
            n_valid = n_valid.min(n - n_train);
        }
        let train_set = self.select(&idx[..n_train]);
        let valid_set = self.select(&idx[n_train..n_train + n_valid]);
        let test_set = self.select(&idx[n_train + n_valid..]);
        Split {
            train: train_set,
            valid: valid_set,
            test: test_set,
        }
    }
}

/// The three parts of a dataset split.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Training partition.
    pub train: Dataset,
    /// Validation partition (model selection).
    pub valid: Dataset,
    /// Held-out test partition (reported MSE).
    pub test: Dataset,
}

/// Trainer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training partition.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 512).
    pub batch_size: usize,
    /// Adam learning rate (the paper uses 0.001).
    pub learning_rate: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            batch_size: 512,
            learning_rate: 1e-3,
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Final MSE on the training partition (best-validation checkpoint).
    pub train_mse: f32,
    /// Best validation MSE observed.
    pub valid_mse: f32,
    /// MSE of the selected checkpoint on the held-out test partition.
    pub test_mse: f32,
    /// Number of epochs actually run.
    pub epochs_run: usize,
    /// Per-epoch validation MSE history.
    pub valid_history: Vec<f32>,
}

/// Mini-batch MSE trainer with best-on-validation checkpointing.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    /// The best model found (set by [`Trainer::fit`]).
    best_model: Option<Mlp>,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Self {
            config,
            best_model: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// The best model from the last [`Trainer::fit`] call, if any.
    pub fn best_model(&self) -> Option<&Mlp> {
        self.best_model.as_ref()
    }

    /// Consumes the trainer and returns the best model.
    pub fn into_best_model(self) -> Option<Mlp> {
        self.best_model
    }

    /// Trains `mlp` on `dataset` (80/10/10 split derived from `seed`) and
    /// returns the report. The best-on-validation checkpoint is kept and
    /// used for the reported train/test MSE.
    pub fn fit(&mut self, mlp: Mlp, dataset: &Dataset, seed: u64) -> TrainReport {
        let split = dataset.split(seed);
        self.fit_split(mlp, &split, seed)
    }

    /// Trains on an explicit split.
    pub fn fit_split(&mut self, mut mlp: Mlp, split: &Split, seed: u64) -> TrainReport {
        let mut adam = Adam::new(&mlp, self.config.learning_rate);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
        let n = split.train.len();
        let batch = self.config.batch_size.clamp(1, n);

        let mut best = mlp.clone();
        let mut best_valid = f32::INFINITY;
        let mut valid_history = Vec::with_capacity(self.config.epochs);

        let mut order: Vec<usize> = (0..n).collect();
        for _epoch in 0..self.config.epochs {
            // Shuffle sample order.
            for i in (1..n).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(batch) {
                let xb = split.train.x().select_rows(chunk);
                let yb = split.train.y().select_rows(chunk);
                let (pred, cache) = mlp.forward_cached(&xb);
                let dy = mse_grad(&pred, &yb);
                let (_, grads) = mlp.backward(&cache, &dy);
                adam.step(&mut mlp, &grads);
            }
            let valid_mse = mse(&mlp.forward(split.valid.x()), split.valid.y());
            valid_history.push(valid_mse);
            if valid_mse < best_valid {
                best_valid = valid_mse;
                best = mlp.clone();
            }
        }

        let train_mse = mse(&best.forward(split.train.x()), split.train.y());
        let test_mse = if !split.test.is_empty() {
            mse(&best.forward(split.test.x()), split.test.y())
        } else {
            f32::NAN
        };
        self.best_model = Some(best);
        TrainReport {
            train_mse,
            valid_mse: best_valid,
            test_mse,
            epochs_run: self.config.epochs,
            valid_history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_dataset(n: usize) -> Dataset {
        let xs: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![(i % 17) as f32 / 17.0, (i % 5) as f32 / 5.0])
            .collect();
        let ys: Vec<Vec<f32>> = xs.iter().map(|r| vec![3.0 * r[0] + r[1] - 0.5]).collect();
        Dataset::new(Matrix::from_rows(xs), Matrix::from_rows(ys)).unwrap()
    }

    #[test]
    fn split_partitions_everything() {
        let d = linear_dataset(100);
        let s = d.split(1);
        assert_eq!(s.train.len() + s.valid.len() + s.test.len(), 100);
        assert_eq!(s.train.len(), 80);
        assert_eq!(s.valid.len(), 10);
    }

    #[test]
    fn split_is_deterministic() {
        let d = linear_dataset(50);
        assert_eq!(d.split(3).train, d.split(3).train);
        assert_ne!(d.split(3).train, d.split(4).train);
    }

    #[test]
    fn trainer_fits_linear_function() {
        let d = linear_dataset(300);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 150,
            batch_size: 32,
            learning_rate: 3e-3,
        });
        let report = trainer.fit(Mlp::new(2, &[16], 1, 0), &d, 7);
        assert!(report.test_mse < 0.02, "test MSE {}", report.test_mse);
        assert!(trainer.best_model().is_some());
        assert_eq!(report.valid_history.len(), 150);
    }

    #[test]
    fn validation_mse_improves_over_training() {
        let d = linear_dataset(200);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 50,
            batch_size: 32,
            learning_rate: 3e-3,
        });
        let report = trainer.fit(Mlp::new(2, &[8], 1, 1), &d, 3);
        let first = report.valid_history[0];
        let last = *report.valid_history.last().unwrap();
        assert!(
            last < first,
            "validation MSE did not improve: {first} -> {last}"
        );
    }

    #[test]
    fn mismatched_dataset_is_rejected() {
        assert!(Dataset::new(Matrix::zeros(3, 2), Matrix::zeros(2, 1)).is_none());
        assert!(Dataset::new(Matrix::zeros(0, 2), Matrix::zeros(0, 1)).is_none());
    }

    #[test]
    fn tiny_datasets_split_without_panicking() {
        let d = linear_dataset(3);
        let s = d.split(0);
        assert_eq!(s.train.len() + s.valid.len() + s.test.len(), 3);
        assert!(!s.train.is_empty());
    }

    #[test]
    fn serde_round_trip_and_validation() {
        let d = linear_dataset(10);
        let json = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
        // Tampered row counts are rejected at deserialization time.
        let bad =
            r#"{"x":{"rows":2,"cols":1,"data":[1.0,2.0]},"y":{"rows":1,"cols":1,"data":[3.0]}}"#;
        assert!(serde_json::from_str::<Dataset>(bad).is_err());
    }

    #[test]
    fn fit_is_deterministic() {
        let d = linear_dataset(100);
        let cfg = TrainConfig {
            epochs: 10,
            batch_size: 16,
            learning_rate: 1e-3,
        };
        let r1 = Trainer::new(cfg).fit(Mlp::new(2, &[8], 1, 2), &d, 5);
        let r2 = Trainer::new(cfg).fit(Mlp::new(2, &[8], 1, 2), &d, 5);
        assert_eq!(r1, r2);
    }
}
