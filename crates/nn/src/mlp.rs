//! Multi-layer perceptron container.

use serde::{Deserialize, Serialize};

use crate::layer::{relu, relu_backward, relu_inplace, Dense};
use crate::tensor::Matrix;

/// Reusable activation buffers for allocation-free forward passes.
///
/// [`Mlp::forward_scratch`] ping-pongs between two matrices, so a caller
/// that evaluates many batches (the cost models' `predict_batch` hot path)
/// allocates nothing after the first call. The buffers grow to the largest
/// batch seen and are reused thereafter.
#[derive(Debug, Default)]
pub struct MlpScratch {
    ping: Matrix,
    pong: Matrix,
}

impl MlpScratch {
    /// Empty scratch; buffers are sized lazily by the first forward pass.
    pub fn new() -> Self {
        Self::default()
    }

    /// The two ping-pong buffers (used by quantized forward passes too).
    pub(crate) fn buffers(&mut self) -> (&mut Matrix, &mut Matrix) {
        (&mut self.ping, &mut self.pong)
    }
}

/// An MLP: dense layers with ReLU between all but the last.
///
/// # Example
///
/// ```
/// use nshard_nn::{Matrix, Mlp};
///
/// // The paper's communication cost model: input → 128-64-32-16 → 1.
/// let mlp = Mlp::new(10, &[128, 64, 32, 16], 1, 0);
/// let x = Matrix::zeros(4, 10);
/// let y = mlp.forward(&x);
/// assert_eq!(y.rows(), 4);
/// assert_eq!(y.cols(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Cached intermediate activations of one forward pass, needed by
/// [`Mlp::backward`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpCache {
    /// `inputs[i]` is the input to layer `i` (post-activation of `i-1`).
    inputs: Vec<Matrix>,
    /// `pre_acts[i]` is the pre-activation output of layer `i` (only layers
    /// followed by a ReLU are recorded meaningfully).
    pre_acts: Vec<Matrix>,
}

/// Per-layer parameter gradients produced by [`Mlp::backward`].
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    /// `(dW, db)` per layer, in layer order.
    pub layers: Vec<(Matrix, Vec<f32>)>,
}

impl Gradients {
    /// Zeroes the gradients of the given layers in place (out-of-range
    /// indices are ignored).
    ///
    /// Used to freeze layers during fine-tuning: Adam's moment estimates
    /// for a layer whose gradients are always zero stay zero, so the
    /// resulting parameter update is exactly `lr·0/(√0+ε) = 0` — the layer
    /// is bitwise untouched, from any fresh optimizer state.
    pub fn zero_layers(&mut self, layers: &[usize]) {
        for &idx in layers {
            if let Some((dw, db)) = self.layers.get_mut(idx) {
                dw.as_mut_slice().fill(0.0);
                db.iter_mut().for_each(|b| *b = 0.0);
            }
        }
    }

    /// Gradients of all zeros shaped like `mlp`.
    pub fn zeros_like(mlp: &Mlp) -> Self {
        Self {
            layers: mlp
                .layers
                .iter()
                .map(|l| {
                    (
                        Matrix::zeros(l.input_dim(), l.output_dim()),
                        vec![0.0; l.output_dim()],
                    )
                })
                .collect(),
        }
    }

    /// Accumulates `other * scale` into `self`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn accumulate(&mut self, other: &Gradients, scale: f32) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "gradient layer mismatch"
        );
        for ((dw, db), (ow, ob)) in self.layers.iter_mut().zip(&other.layers) {
            dw.add_scaled(ow, scale);
            for (b, &o) in db.iter_mut().zip(ob) {
                *b += o * scale;
            }
        }
    }

    /// Sums a list of gradients with a fixed-order pairwise tree reduction:
    /// level by level, element `2k` absorbs element `2k + 1`.
    ///
    /// The reduction order is a pure function of `grads.len()`, never of
    /// which thread produced which entry — the property that lets the
    /// data-parallel trainer produce bit-identical weights at any worker
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `grads` is empty or the shapes mismatch.
    pub fn tree_reduce(mut grads: Vec<Gradients>) -> Gradients {
        assert!(!grads.is_empty(), "cannot reduce zero gradients");
        while grads.len() > 1 {
            let mut next = Vec::with_capacity(grads.len().div_ceil(2));
            let mut it = grads.into_iter();
            while let Some(mut left) = it.next() {
                if let Some(right) = it.next() {
                    left.accumulate(&right, 1.0);
                }
                next.push(left);
            }
            grads = next;
        }
        grads.pop().expect("one gradient remains")
    }
}

impl Mlp {
    /// Builds an MLP `input_dim → hidden[0] → ... → hidden[n-1] → output_dim`
    /// with ReLU after every hidden layer, deterministically seeded.
    pub fn new(input_dim: usize, hidden: &[usize], output_dim: usize, seed: u64) -> Self {
        let mut dims = Vec::with_capacity(hidden.len() + 2);
        dims.push(input_dim);
        dims.extend_from_slice(hidden);
        dims.push(output_dim);
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Dense::new(w[0], w[1], seed.wrapping_add(i as u64 * 0x9E37)))
            .collect();
        Self { layers }
    }

    /// The layers.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable access to the layers (used by the optimizer).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, Dense::input_dim)
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, Dense::output_dim)
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.input_dim() * l.output_dim() + l.output_dim())
            .sum()
    }

    /// Inference-only forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let last = self.layers.len().saturating_sub(1);
        for (i, layer) in self.layers.iter().enumerate() {
            let pre = layer.forward(&h);
            h = if i < last { relu(&pre) } else { pre };
        }
        h
    }

    /// Inference forward pass through caller-provided scratch buffers,
    /// returning a borrow of the final activation.
    ///
    /// Bit-identical to [`Mlp::forward`]; the only difference is that all
    /// intermediate (and the final) activations live in `scratch`, so a hot
    /// caller performs no allocations after warm-up.
    pub fn forward_scratch<'s>(&self, x: &Matrix, scratch: &'s mut MlpScratch) -> &'s Matrix {
        let (ping, pong) = scratch.buffers();
        if self.layers.is_empty() {
            ping.copy_from(x);
            return ping;
        }
        let last = self.layers.len() - 1;
        self.layers[0].forward_into(x, ping);
        if last > 0 {
            relu_inplace(ping);
        }
        let (mut cur, mut nxt) = (ping, pong);
        for (i, layer) in self.layers.iter().enumerate().skip(1) {
            layer.forward_into(cur, nxt);
            if i < last {
                relu_inplace(nxt);
            }
            std::mem::swap(&mut cur, &mut nxt);
        }
        cur
    }

    /// Forward pass that records the cache needed for [`Mlp::backward`].
    pub fn forward_cached(&self, x: &Matrix) -> (Matrix, MlpCache) {
        let mut cache = MlpCache {
            inputs: Vec::with_capacity(self.layers.len()),
            pre_acts: Vec::with_capacity(self.layers.len()),
        };
        let mut h = x.clone();
        let last = self.layers.len().saturating_sub(1);
        for (i, layer) in self.layers.iter().enumerate() {
            cache.inputs.push(h.clone());
            let pre = layer.forward(&h);
            cache.pre_acts.push(pre.clone());
            h = if i < last { relu(&pre) } else { pre };
        }
        (h, cache)
    }

    /// Backward pass: given the cache of a [`Mlp::forward_cached`] call and
    /// the upstream gradient `dy` on the output, returns the gradient on the
    /// input plus per-layer parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if `cache` does not match this network's depth.
    pub fn backward(&self, cache: &MlpCache, dy: &Matrix) -> (Matrix, Gradients) {
        assert_eq!(
            cache.inputs.len(),
            self.layers.len(),
            "cache depth mismatch"
        );
        let mut grads = Vec::with_capacity(self.layers.len());
        let mut d = dy.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate().rev() {
            if i < last {
                d = relu_backward(&cache.pre_acts[i], &d);
            }
            let (dx, dw, db) = layer.backward(&cache.inputs[i], &d);
            grads.push((dw, db));
            d = dx;
        }
        grads.reverse();
        (d, Gradients { layers: grads })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mlp = Mlp::new(5, &[128, 32], 1, 0);
        let y = mlp.forward(&Matrix::zeros(3, 5));
        assert_eq!((y.rows(), y.cols()), (3, 1));
        assert_eq!(mlp.input_dim(), 5);
        assert_eq!(mlp.output_dim(), 1);
    }

    #[test]
    fn num_params_counts() {
        let mlp = Mlp::new(2, &[3], 1, 0);
        // 2*3 + 3 + 3*1 + 1 = 13
        assert_eq!(mlp.num_params(), 13);
    }

    #[test]
    fn scratch_forward_is_bit_identical() {
        let mlp = Mlp::new(4, &[8, 8], 2, 3);
        let x1 = Matrix::from_rows([vec![0.1, -0.2, 0.3, 0.4], vec![1.0, 2.0, -3.0, 0.5]]);
        let x2 = Matrix::from_rows([vec![-0.7, 0.0, 2.5, 0.9]]);
        let mut scratch = MlpScratch::new();
        // Reusing the same scratch across differently-shaped batches.
        for x in [&x1, &x2, &x1] {
            let want = mlp.forward(x);
            let got = mlp.forward_scratch(x, &mut scratch);
            assert_eq!(&want, got);
            assert_eq!(
                want.as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                got.as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn cached_forward_matches_plain_forward() {
        let mlp = Mlp::new(4, &[8, 8], 2, 3);
        let x = Matrix::from_rows([vec![0.1, -0.2, 0.3, 0.4], vec![1.0, 2.0, -3.0, 0.5]]);
        let (y, _) = mlp.forward_cached(&x);
        assert_eq!(y, mlp.forward(&x));
    }

    #[test]
    fn gradient_check_full_network() {
        let mlp = Mlp::new(3, &[5], 1, 7);
        let x = Matrix::from_rows([vec![0.2, -0.5, 0.9]]);
        let (_, cache) = mlp.forward_cached(&x);
        let dy = Matrix::from_rows([vec![1.0]]);
        let (dx, grads) = mlp.backward(&cache, &dy);

        let loss = |m: &Mlp, x: &Matrix| m.forward(x).get(0, 0);
        let base = loss(&mlp, &x);
        let eps = 1e-3;

        // Input gradient.
        for c in 0..3 {
            let mut xp = x.clone();
            xp.set(0, c, xp.get(0, c) + eps);
            let num = (loss(&mlp, &xp) - base) / eps;
            assert!(
                (num - dx.get(0, c)).abs() < 1e-2,
                "dx[{c}]: {num} vs {}",
                dx.get(0, c)
            );
        }
        // First-layer weight gradient, a few entries.
        for idx in 0..5 {
            let mut mp = mlp.clone();
            mp.layers_mut()[0].params_mut().0[idx] += eps;
            let num = (loss(&mp, &x) - base) / eps;
            let analytic = grads.layers[0].0.as_slice()[idx];
            assert!(
                (num - analytic).abs() < 1e-2,
                "dW0[{idx}]: {num} vs {analytic}"
            );
        }
    }

    #[test]
    fn gradients_accumulate() {
        let mlp = Mlp::new(2, &[3], 1, 0);
        let x = Matrix::from_rows([vec![1.0, -1.0]]);
        let (_, cache) = mlp.forward_cached(&x);
        let (_, g) = mlp.backward(&cache, &Matrix::from_rows([vec![1.0]]));
        let mut acc = Gradients::zeros_like(&mlp);
        acc.accumulate(&g, 2.0);
        acc.accumulate(&g, -2.0);
        for (dw, db) in &acc.layers {
            assert!(dw.norm() < 1e-6);
            assert!(db.iter().all(|&v| v.abs() < 1e-6));
        }
    }

    #[test]
    fn tree_reduce_sums_in_fixed_order() {
        let mlp = Mlp::new(2, &[3], 1, 0);
        let x = Matrix::from_rows([vec![1.0, -1.0]]);
        let (_, cache) = mlp.forward_cached(&x);
        let (_, g) = mlp.backward(&cache, &Matrix::from_rows([vec![1.0]]));
        // For three entries the tree order is exactly ((a + b) + c).
        let scaled = |s: f32| {
            let mut out = Gradients::zeros_like(&mlp);
            out.accumulate(&g, s);
            out
        };
        let (a, b, c) = (scaled(1.0), scaled(0.25), scaled(-0.5));
        let mut expected = a.clone();
        expected.accumulate(&b, 1.0);
        expected.accumulate(&c, 1.0);
        let reduced = Gradients::tree_reduce(vec![a.clone(), b.clone(), c.clone()]);
        for ((rw, rb), (sw, sb)) in reduced.layers.iter().zip(&expected.layers) {
            assert_eq!(rw.as_slice(), sw.as_slice());
            assert_eq!(rb, sb);
        }
        // The reduction is a pure function of its inputs.
        let again = Gradients::tree_reduce(vec![a, b, c]);
        assert_eq!(again.layers[0].0.as_slice(), reduced.layers[0].0.as_slice());
        // Single-element reduction is the identity.
        let one = Gradients::tree_reduce(vec![g.clone()]);
        assert_eq!(one.layers[0].0.as_slice(), g.layers[0].0.as_slice());
    }

    #[test]
    #[should_panic(expected = "zero gradients")]
    fn tree_reduce_rejects_empty() {
        let _ = Gradients::tree_reduce(Vec::new());
    }

    #[test]
    fn deterministic_construction() {
        assert_eq!(Mlp::new(4, &[8], 2, 5), Mlp::new(4, &[8], 2, 5));
        assert_ne!(Mlp::new(4, &[8], 2, 5), Mlp::new(4, &[8], 2, 6));
    }
}
