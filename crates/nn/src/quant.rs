//! Int8 quantized inference for [`Mlp`] forward passes.
//!
//! The cost models are read-mostly at search time: weights are frozen after
//! pre-training and every plan evaluation is a forward pass. That makes
//! them a natural fit for **per-layer symmetric weight quantization**:
//!
//! * each layer's weights are mapped to `i8` with a single scale
//!   `s = max|w| / 127` (`q = round(w / s)`, clamped to `[-127, 127]`),
//! * activations stay `f32` and accumulation is `f32`
//!   (`y = s · (x · q) + b`), so there is no activation calibration step
//!   and no accumulation overflow to manage,
//! * the worst-case weight reconstruction error is recorded per layer:
//!   round-to-nearest guarantees `|w - s·q| ≤ s/2`, exposed as
//!   [`QuantizedDense::error_bound`] and asserted by the conformance suite.
//!
//! Quantization is **inference-only**: training, checkpoints, and the f32
//! search path never see these types. The kernels reuse the packed-panel
//! layout from [`crate::gemm`] with `i8` storage, widening each panel row
//! to `f32` inside the register tile.

use crate::gemm::{MR, NR};
use crate::layer::{relu_inplace, Dense};
use crate::mlp::{Mlp, MlpScratch};
use crate::tensor::Matrix;

/// A dense layer with int8-quantized weights and f32 bias/accumulation.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedDense {
    k: usize,
    n: usize,
    scale: f32,
    /// `ceil(n/NR)` panels of `k × NR` int8 weights, zero-padded like
    /// [`crate::gemm::PackedGemm`].
    panels: Vec<i8>,
    bias: Vec<f32>,
}

impl QuantizedDense {
    /// Quantizes a trained layer's weights symmetrically per layer.
    pub fn quantize(layer: &Dense) -> Self {
        let w = layer.weights();
        let (k, n) = (w.rows(), w.cols());
        let max_abs = w.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        let n_panels = n.div_ceil(NR);
        let mut panels = vec![0i8; n_panels * k * NR];
        let b = w.as_slice();
        for p in 0..n_panels {
            let j = p * NR;
            let width = (n - j).min(NR);
            let panel = &mut panels[p * k * NR..(p + 1) * k * NR];
            for (kk, dst) in panel.chunks_exact_mut(NR).enumerate() {
                for c in 0..width {
                    let q = (b[kk * n + j + c] / scale).round();
                    dst[c] = q.clamp(-127.0, 127.0) as i8;
                }
            }
        }
        Self {
            k,
            n,
            scale,
            panels,
            bias: layer.bias().to_vec(),
        }
    }

    /// The per-layer symmetric quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Recorded worst-case weight reconstruction error: round-to-nearest
    /// symmetric quantization guarantees `|w - scale·q| ≤ scale / 2`.
    pub fn error_bound(&self) -> f32 {
        self.scale * 0.5
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.k
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.n
    }

    /// Reconstructed (dequantized) weight at `(r, c)` — test/diagnostic aid.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn dequantized_weight(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.k && c < self.n, "index out of bounds");
        let p = c / NR;
        f32::from(self.panels[(p * self.k + r) * NR + c % NR]) * self.scale
    }

    /// Forward pass into a caller-provided output:
    /// `out = scale · (x · q) + bias` with f32 accumulation.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim()`.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(x.cols(), self.k, "quantized forward shape mismatch");
        let m = x.rows();
        out.reset(m, self.n);
        self.gemm_into(x.as_slice(), m, out.as_mut_slice());
        out.add_row_bias(&self.bias);
    }

    /// `out = scale · (a · q)` over the packed int8 panels; same tiling as
    /// [`crate::gemm::PackedGemm::gemm_into`] with an `i8 → f32` widen in
    /// the register tile and one scale multiply at store time.
    fn gemm_into(&self, a: &[f32], m: usize, out: &mut [f32]) {
        let (k, n, scale) = (self.k, self.n, self.scale);
        assert_eq!(a.len(), m * k, "quantized gemm: lhs length mismatch");
        assert_eq!(out.len(), m * n, "quantized gemm: out length mismatch");
        if n == 0 {
            return;
        }
        if k == 0 {
            out.fill(0.0);
            return;
        }
        let m_main = m - m % MR;
        let mut i = 0;
        while i < m_main {
            let a0 = &a[i * k..(i + 1) * k];
            let a1 = &a[(i + 1) * k..(i + 2) * k];
            let a2 = &a[(i + 2) * k..(i + 3) * k];
            let a3 = &a[(i + 3) * k..(i + 4) * k];
            for (p, panel) in self.panels.chunks_exact(k * NR).enumerate() {
                let j = p * NR;
                let w = (n - j).min(NR);
                let mut acc = [[0.0f32; NR]; MR];
                for ((((qk, &v0), &v1), &v2), &v3) in
                    panel.chunks_exact(NR).zip(a0).zip(a1).zip(a2).zip(a3)
                {
                    let qk: &[i8; NR] = qk.try_into().expect("NR-wide panel row");
                    let mut bk = [0.0f32; NR];
                    for c in 0..NR {
                        bk[c] = f32::from(qk[c]);
                    }
                    let av = [v0, v1, v2, v3];
                    for r in 0..MR {
                        for c in 0..NR {
                            acc[r][c] += av[r] * bk[c];
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    let out_row = &mut out[(i + r) * n + j..(i + r) * n + j + w];
                    for (o, &v) in out_row.iter_mut().zip(acc_row) {
                        *o = v * scale;
                    }
                }
            }
            i += MR;
        }
        while i < m {
            let a_row = &a[i * k..(i + 1) * k];
            for (p, panel) in self.panels.chunks_exact(k * NR).enumerate() {
                let j = p * NR;
                let w = (n - j).min(NR);
                let mut acc = [0.0f32; NR];
                for (qk, &av) in panel.chunks_exact(NR).zip(a_row) {
                    let qk: &[i8; NR] = qk.try_into().expect("NR-wide panel row");
                    for c in 0..NR {
                        acc[c] += av * f32::from(qk[c]);
                    }
                }
                let out_row = &mut out[i * n + j..i * n + j + w];
                for (o, &v) in out_row.iter_mut().zip(&acc) {
                    *o = v * scale;
                }
            }
            i += 1;
        }
    }
}

/// An int8-quantized snapshot of an [`Mlp`], for inference only.
///
/// Mirrors [`Mlp::forward`]'s structure (ReLU between all layers but the
/// last) over [`QuantizedDense`] layers.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedDense>,
}

impl QuantizedMlp {
    /// Quantizes every layer of a trained MLP.
    pub fn from_mlp(mlp: &Mlp) -> Self {
        Self {
            layers: mlp.layers().iter().map(QuantizedDense::quantize).collect(),
        }
    }

    /// The quantized layers.
    pub fn layers(&self) -> &[QuantizedDense] {
        &self.layers
    }

    /// Largest per-layer weight reconstruction error bound across the net.
    pub fn error_bound(&self) -> f32 {
        self.layers
            .iter()
            .fold(0.0f32, |m, l| m.max(l.error_bound()))
    }

    /// Forward pass allocating a fresh output matrix.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut scratch = MlpScratch::new();
        self.forward_scratch(x, &mut scratch).clone()
    }

    /// Forward pass through caller-provided scratch, returning a borrow of
    /// the final activation. Mirrors [`Mlp::forward_scratch`].
    pub fn forward_scratch<'s>(&self, x: &Matrix, scratch: &'s mut MlpScratch) -> &'s Matrix {
        let (ping, pong) = scratch.buffers();
        if self.layers.is_empty() {
            ping.copy_from(x);
            return ping;
        }
        let last = self.layers.len() - 1;
        self.layers[0].forward_into(x, ping);
        if last > 0 {
            relu_inplace(ping);
        }
        let (mut cur, mut nxt) = (ping, pong);
        for (idx, layer) in self.layers.iter().enumerate().skip(1) {
            layer.forward_into(cur, nxt);
            if idx < last {
                relu_inplace(nxt);
            }
            std::mem::swap(&mut cur, &mut nxt);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_within_bound() {
        let layer = Dense::new(16, 12, 3);
        let q = QuantizedDense::quantize(&layer);
        let bound = q.error_bound();
        for r in 0..16 {
            for c in 0..12 {
                let err = (q.dequantized_weight(r, c) - layer.weights().get(r, c)).abs();
                assert!(
                    err <= bound * 1.0000001,
                    "weight ({r},{c}) error {err} exceeds bound {bound}"
                );
            }
        }
    }

    #[test]
    fn quantized_forward_close_to_f32() {
        let mlp = Mlp::new(8, &[32, 16], 1, 11);
        let q = QuantizedMlp::from_mlp(&mlp);
        let x = Matrix::from_rows((0..5).map(|i| {
            (0..8)
                .map(|j| ((i * 8 + j) as f32 * 0.17).sin())
                .collect::<Vec<_>>()
        }));
        let exact = mlp.forward(&x);
        let approx = q.forward(&x);
        assert_eq!(exact.rows(), approx.rows());
        for (e, a) in exact.as_slice().iter().zip(approx.as_slice()) {
            assert!(
                (e - a).abs() < 0.05 * e.abs().max(1.0),
                "quantized output {a} far from exact {e}"
            );
        }
    }

    #[test]
    fn zero_weights_quantize_cleanly() {
        let mut layer = Dense::new(4, 4, 0);
        layer.params_mut().0.fill(0.0);
        let q = QuantizedDense::quantize(&layer);
        assert_eq!(q.scale(), 1.0);
        let x = Matrix::from_rows([vec![1.0, 2.0, 3.0, 4.0]]);
        let y = {
            let mut out = Matrix::zeros(0, 0);
            q.forward_into(&x, &mut out);
            out
        };
        assert_eq!(y.as_slice(), &[0.0; 4]);
    }
}
