//! Dense (fully connected) layer with manual gradients.

use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gemm::PackedGemm;
use crate::tensor::Matrix;

/// A fully connected layer `y = x · W + b` with `W: in × out`.
///
/// The layer stores only parameters; activations are cached by the caller
/// (see [`crate::mlp::MlpCache`]) so a layer can be shared across several
/// forward passes in flight (the computation cost model applies one shared
/// encoder to many tables).
///
/// Forward passes run through a packed-panel copy of `W` (see
/// [`crate::gemm::PackedGemm`]) that is built lazily on first use and
/// invalidated whenever the parameters are mutated. The cache is pure
/// derived state: it never affects equality, serialization, or results
/// (the packed kernel is bit-identical to the scalar reference).
#[derive(Debug)]
pub struct Dense {
    w: Matrix,
    b: Vec<f32>,
    packed: OnceLock<PackedGemm>,
}

impl Clone for Dense {
    fn clone(&self) -> Self {
        Self {
            w: self.w.clone(),
            b: self.b.clone(),
            // Carry the packed panels over so clones stay on the fast path.
            packed: self
                .packed
                .get()
                .cloned()
                .map(OnceLock::from)
                .unwrap_or_default(),
        }
    }
}

impl PartialEq for Dense {
    fn eq(&self, other: &Self) -> bool {
        self.w == other.w && self.b == other.b
    }
}

// Serialization must stay byte-compatible with the historical
// `#[derive(Serialize, Deserialize)]` on `{ w, b }` — golden checkpoint
// fixtures pin the exact output — so these impls mirror the derive macro's
// expansion and simply omit the packed cache.
impl serde::Serialize for Dense {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Map(vec![
            (String::from("w"), serde::Serialize::to_value(&self.w)),
            (String::from("b"), serde::Serialize::to_value(&self.b)),
        ])
    }
}

impl serde::Deserialize for Dense {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        let map = v.as_map().ok_or_else(|| {
            serde::de::Error::custom(format!(
                "expected object for struct Dense, found {}",
                v.kind()
            ))
        })?;
        Ok(Dense {
            w: serde::__field(map, "w")?,
            b: serde::__field(map, "b")?,
            packed: OnceLock::new(),
        })
    }
}

impl Dense {
    /// He-initialized dense layer, deterministic for a given seed.
    pub fn new(input_dim: usize, output_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = (2.0 / input_dim.max(1) as f32).sqrt();
        let data = (0..input_dim * output_dim)
            .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Self {
            w: Matrix::from_flat(input_dim, output_dim, data),
            b: vec![0.0; output_dim],
            packed: OnceLock::new(),
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// The weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// The packed-panel copy of `W`, built on first use.
    fn packed(&self) -> &PackedGemm {
        self.packed
            .get_or_init(|| PackedGemm::pack(self.w.as_slice(), self.w.rows(), self.w.cols()))
    }

    /// Forward pass: `x (batch × in) → batch × out`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(x.rows(), self.output_dim());
        self.forward_into(x, &mut y);
        y
    }

    /// Forward pass into a caller-provided output, reusing its allocation.
    ///
    /// Bit-identical to [`Dense::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim`.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(x.cols(), self.input_dim(), "matmul shape mismatch");
        out.reset(x.rows(), self.output_dim());
        self.packed()
            .gemm_into(x.as_slice(), x.rows(), out.as_mut_slice());
        out.add_row_bias(&self.b);
    }

    /// Backward pass. Given the layer input `x` and the upstream gradient
    /// `dy`, returns `(dx, dw, db)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn backward(&self, x: &Matrix, dy: &Matrix) -> (Matrix, Matrix, Vec<f32>) {
        assert_eq!(x.rows(), dy.rows(), "batch mismatch in backward");
        let dx = dy.matmul_t(&self.w); // dy (b×out) · Wᵀ (out×in)
        let dw = x.t_matmul(dy); // xᵀ (in×b) · dy (b×out)
        let db = dy.col_sums();
        (dx, dw, db)
    }

    /// Applies a parameter update: `W += dw_scaled`, `b += db_scaled`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn apply_update(&mut self, dw: &Matrix, db: &[f32]) {
        self.packed.take();
        self.w.add_scaled(dw, 1.0);
        assert_eq!(db.len(), self.b.len(), "bias update length mismatch");
        for (b, &d) in self.b.iter_mut().zip(db) {
            *b += d;
        }
    }

    /// Direct mutable access to the parameters (weights buffer then bias),
    /// used by the optimizer.
    pub fn params_mut(&mut self) -> (&mut [f32], &mut [f32]) {
        self.packed.take();
        (self.w.as_mut_slice(), &mut self.b)
    }
}

/// ReLU forward: `max(0, x)` element-wise, returning a new matrix.
pub fn relu(x: &Matrix) -> Matrix {
    let mut y = x.clone();
    relu_inplace(&mut y);
    y
}

/// ReLU forward in place: `max(0, x)` element-wise (bit-identical to
/// [`relu`], without the allocation).
pub fn relu_inplace(x: &mut Matrix) {
    x.map_inplace(|v| v.max(0.0));
}

/// ReLU backward: zeroes the upstream gradient wherever the *pre-activation*
/// input was non-positive.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn relu_backward(pre_activation: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!(pre_activation.rows(), dy.rows(), "relu shape mismatch");
    assert_eq!(pre_activation.cols(), dy.cols(), "relu shape mismatch");
    let mut dx = dy.clone();
    for (d, &p) in dx.as_mut_slice().iter_mut().zip(pre_activation.as_slice()) {
        if p <= 0.0 {
            *d = 0.0;
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn forward_known_values() {
        let mut layer = Dense::new(2, 1, 0);
        // Overwrite parameters with known values.
        let (w, b) = layer.params_mut();
        w.copy_from_slice(&[2.0, -1.0]);
        b.copy_from_slice(&[0.5]);
        let x = Matrix::from_rows([vec![1.0, 3.0]]);
        let y = layer.forward(&x);
        assert_eq!(y.get(0, 0), 1.0 * 2.0 + -3.0 + 0.5);
    }

    #[test]
    fn initialization_is_seeded() {
        assert_eq!(Dense::new(4, 3, 7), Dense::new(4, 3, 7));
        assert_ne!(Dense::new(4, 3, 7), Dense::new(4, 3, 8));
    }

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::from_rows([vec![-1.0, 0.0, 2.0]]);
        assert_eq!(relu(&x), Matrix::from_rows([vec![0.0, 0.0, 2.0]]));
    }

    #[test]
    fn relu_backward_masks() {
        let pre = Matrix::from_rows([vec![-1.0, 0.5]]);
        let dy = Matrix::from_rows([vec![3.0, 3.0]]);
        assert_eq!(
            relu_backward(&pre, &dy),
            Matrix::from_rows([vec![0.0, 3.0]])
        );
    }

    /// Finite-difference gradient check on a tiny layer.
    #[test]
    fn gradients_match_finite_differences() {
        let layer = Dense::new(3, 2, 1);
        let x = Matrix::from_rows([vec![0.5, -0.3, 0.8], vec![-0.1, 0.4, 0.2]]);
        // Loss = sum of outputs; dL/dy = ones.
        let dy = Matrix::from_rows([vec![1.0, 1.0], vec![1.0, 1.0]]);
        let (dx, dw, db) = layer.backward(&x, &dy);

        let loss = |layer: &Dense, x: &Matrix| -> f32 { layer.forward(x).as_slice().iter().sum() };
        let eps = 1e-3;

        // Check dW numerically.
        let base = loss(&layer, &x);
        for idx in 0..6 {
            let mut pert = layer.clone();
            pert.params_mut().0[idx] += eps;
            let num = (loss(&pert, &x) - base) / eps;
            assert!(
                (num - dw.as_slice()[idx]).abs() < 1e-2,
                "dW[{idx}]: numeric {num} vs analytic {}",
                dw.as_slice()[idx]
            );
        }
        // Check db numerically.
        for (idx, &analytic) in db.iter().enumerate() {
            let mut pert = layer.clone();
            pert.params_mut().1[idx] += eps;
            let num = (loss(&pert, &x) - base) / eps;
            assert!((num - analytic).abs() < 1e-2);
        }
        // Check dx numerically.
        for r in 0..2 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp.set(r, c, xp.get(r, c) + eps);
                let num = (loss(&layer, &xp) - base) / eps;
                assert!((num - dx.get(r, c)).abs() < 1e-2);
            }
        }
    }

    proptest! {
        #[test]
        fn forward_shape(batch in 1usize..8, input in 1usize..8, output in 1usize..8) {
            let layer = Dense::new(input, output, 3);
            let x = Matrix::zeros(batch, input);
            let y = layer.forward(&x);
            prop_assert_eq!(y.rows(), batch);
            prop_assert_eq!(y.cols(), output);
        }
    }
}
