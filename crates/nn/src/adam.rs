//! The Adam optimizer (Kingma & Ba, 2015) — the paper's optimizer with its
//! default hyperparameters (lr 0.001, β₁ 0.9, β₂ 0.999).

use serde::{Deserialize, Serialize};

use crate::mlp::{Gradients, Mlp};

/// Adam state for one [`Mlp`].
///
/// # Example
///
/// ```
/// use nshard_nn::{Adam, Gradients, Matrix, Mlp};
///
/// let mut mlp = Mlp::new(2, &[4], 1, 0);
/// let mut adam = Adam::new(&mlp, 0.001);
/// let x = Matrix::from_rows([vec![1.0, 2.0]]);
/// let (y, cache) = mlp.forward_cached(&x);
/// let dy = Matrix::from_rows([vec![y.get(0, 0) - 3.0]]); // pull output to 3
/// let (_, grads) = mlp.backward(&cache, &dy);
/// adam.step(&mut mlp, &grads);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    /// First-moment estimates, flattened per layer: (weights, bias).
    m: Vec<(Vec<f32>, Vec<f32>)>,
    /// Second-moment estimates, same layout.
    v: Vec<(Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Creates Adam state shaped like `mlp` with learning rate `lr` and the
    /// standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(mlp: &Mlp, lr: f32) -> Self {
        let shape = |mlp: &Mlp| {
            mlp.layers()
                .iter()
                .map(|l| {
                    (
                        vec![0.0; l.input_dim() * l.output_dim()],
                        vec![0.0; l.output_dim()],
                    )
                })
                .collect()
        };
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: shape(mlp),
            v: shape(mlp),
        }
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (e.g. for decay schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update to `mlp` using `grads`.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not match the network's shape.
    pub fn step(&mut self, mlp: &mut Mlp, grads: &Gradients) {
        assert_eq!(
            grads.layers.len(),
            mlp.layers().len(),
            "gradient/network layer count mismatch"
        );
        self.t += 1;
        let t = self.t as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (layer_idx, layer) in mlp.layers_mut().iter_mut().enumerate() {
            let (dw, db) = &grads.layers[layer_idx];
            let (w, b) = layer.params_mut();
            Self::update_buffer(
                w,
                dw.as_slice(),
                &mut self.m[layer_idx].0,
                &mut self.v[layer_idx].0,
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                bias1,
                bias2,
            );
            Self::update_buffer(
                b,
                db,
                &mut self.m[layer_idx].1,
                &mut self.v[layer_idx].1,
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                bias1,
                bias2,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn update_buffer(
        params: &mut [f32],
        grads: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        bias1: f32,
        bias2: f32,
    ) {
        assert_eq!(
            params.len(),
            grads.len(),
            "parameter/gradient length mismatch"
        );
        for i in 0..params.len() {
            let g = grads[i];
            m[i] = beta1 * m[i] + (1.0 - beta1) * g;
            v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
            let m_hat = m[i] / bias1;
            let v_hat = v[i] / bias2;
            params[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Matrix;

    /// Adam should drive a 1-parameter quadratic to its minimum.
    #[test]
    fn converges_on_quadratic() {
        let mut mlp = Mlp::new(1, &[], 1, 0); // single linear layer y = wx + b
        let mut adam = Adam::new(&mlp, 0.05);
        let x = Matrix::from_rows([vec![1.0]]);
        // Target: y = 5. Loss = (y-5)^2, dL/dy = 2(y-5).
        for _ in 0..500 {
            let (y, cache) = mlp.forward_cached(&x);
            let dy = Matrix::from_rows([vec![2.0 * (y.get(0, 0) - 5.0)]]);
            let (_, grads) = mlp.backward(&cache, &dy);
            adam.step(&mut mlp, &grads);
        }
        let y = mlp.forward(&x).get(0, 0);
        assert!((y - 5.0).abs() < 0.05, "converged to {y}");
    }

    #[test]
    fn step_counter_increments() {
        let mut mlp = Mlp::new(1, &[], 1, 0);
        let mut adam = Adam::new(&mlp, 0.01);
        assert_eq!(adam.steps(), 0);
        let x = Matrix::from_rows([vec![1.0]]);
        let (_, cache) = mlp.forward_cached(&x);
        let (_, grads) = mlp.backward(&cache, &Matrix::from_rows([vec![1.0]]));
        adam.step(&mut mlp, &grads);
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mlp = Mlp::new(1, &[], 1, 0);
        let mut adam = Adam::new(&mlp, 0.01);
        adam.set_learning_rate(0.1);
        assert_eq!(adam.learning_rate(), 0.1);
    }

    #[test]
    fn zero_gradients_leave_params_nearly_unchanged() {
        let mut mlp = Mlp::new(2, &[3], 1, 1);
        let before = mlp.clone();
        let mut adam = Adam::new(&mlp, 0.01);
        let zeros = Gradients::zeros_like(&mlp);
        adam.step(&mut mlp, &zeros);
        // With g = 0 the update is exactly 0 (m and v stay 0).
        assert_eq!(mlp, before);
    }
}
