//! Model checkpoint (de)serialization.
//!
//! The paper's deployment section (§3.2) stresses strict version control of
//! cost-model checkpoints so a training job resumes with the same sharding
//! plan. Checkpoints here are JSON documents with an explicit format version
//! and a human-readable header.

use serde::{Deserialize, Serialize};

use crate::mlp::Mlp;

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A versioned, self-describing model checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Checkpoint format version; loading fails on mismatch.
    pub version: u32,
    /// Free-form model name (e.g. `"compute_cost"`).
    pub name: String,
    /// The serialized network.
    pub model: Mlp,
}

/// Errors arising from checkpoint handling.
#[derive(Debug)]
pub enum CheckpointError {
    /// The JSON could not be parsed.
    Parse(serde_json::Error),
    /// The checkpoint has an unsupported format version.
    VersionMismatch {
        /// Version found in the document.
        found: u32,
        /// Version this library supports.
        supported: u32,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Parse(e) => write!(f, "failed to parse checkpoint: {e}"),
            CheckpointError::VersionMismatch { found, supported } => write!(
                f,
                "checkpoint version {found} is not supported (this build supports {supported})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Parse(e) => Some(e),
            CheckpointError::VersionMismatch { .. } => None,
        }
    }
}

impl Checkpoint {
    /// Wraps a model into a versioned checkpoint.
    pub fn new(name: impl Into<String>, model: Mlp) -> Self {
        Self {
            version: CHECKPOINT_VERSION,
            name: name.into(),
            model,
        }
    }

    /// Serializes to a JSON string.
    ///
    /// # Panics
    ///
    /// Never panics in practice: the checkpoint contains only serializable
    /// plain data.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoints are always serializable")
    }

    /// Parses a checkpoint from JSON, validating the format version.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Parse`] on malformed JSON,
    /// [`CheckpointError::VersionMismatch`] on an unsupported version.
    pub fn from_json(json: &str) -> Result<Self, CheckpointError> {
        let ckpt: Checkpoint = serde_json::from_str(json).map_err(CheckpointError::Parse)?;
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::VersionMismatch {
                found: ckpt.version,
                supported: CHECKPOINT_VERSION,
            });
        }
        Ok(ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Matrix;

    #[test]
    fn round_trip_preserves_predictions() {
        let mlp = Mlp::new(3, &[8, 4], 1, 9);
        let ckpt = Checkpoint::new("compute_cost", mlp.clone());
        let json = ckpt.to_json();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(back.name, "compute_cost");
        let x = Matrix::from_rows([vec![0.1, 0.2, 0.3]]);
        assert_eq!(mlp.forward(&x), back.model.forward(&x));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut ckpt = Checkpoint::new("m", Mlp::new(1, &[], 1, 0));
        ckpt.version = 999;
        let json = serde_json::to_string(&ckpt).unwrap();
        match Checkpoint::from_json(&json) {
            Err(CheckpointError::VersionMismatch { found, .. }) => assert_eq!(found, 999),
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            Checkpoint::from_json("not json"),
            Err(CheckpointError::Parse(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let err = CheckpointError::VersionMismatch {
            found: 2,
            supported: 1,
        };
        assert!(err.to_string().contains('2'));
    }
}
