//! Model checkpoint (de)serialization.
//!
//! The paper's deployment section (§3.2) stresses strict version control of
//! cost-model checkpoints so a training job resumes with the same sharding
//! plan. Checkpoints here are JSON documents with an explicit format version
//! and a human-readable header.
//!
//! Two layers live here:
//!
//! * [`Checkpoint`] — the concrete single-[`Mlp`] checkpoint used by the
//!   training binaries;
//! * the **versioned envelope** ([`envelope_to_json`] /
//!   [`envelope_from_json`] / [`save_envelope`] / [`load_envelope`]) — a
//!   generic wrapper putting the same version header around *any*
//!   serializable payload. The `nshard-serve` daemon persists whole
//!   cost-model bundles and adopted plans through it, so every artifact on
//!   disk is self-describing and version-checked at load time.
//!
//! **Version policy.** The current format is [`CHECKPOINT_VERSION`]; every
//! version down to [`MIN_SUPPORTED_CHECKPOINT_VERSION`] still loads and is
//! migrated forward in memory (v1 documents predate the `created_by`
//! field, which migration defaults to the empty string). Anything outside
//! that range surfaces a typed [`CheckpointError::UnsupportedVersion`] —
//! never a bare parse failure — so a daemon refusing to boot can say
//! exactly which version it found and which range it supports.

use serde::value::Value;
use serde::{Deserialize, Serialize};

use crate::mlp::Mlp;

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Oldest checkpoint format version this build still loads (migrating it
/// forward in memory).
pub const MIN_SUPPORTED_CHECKPOINT_VERSION: u32 = 1;

/// A versioned, self-describing model checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Checkpoint format version; see the module docs for the policy.
    pub version: u32,
    /// Free-form model name (e.g. `"compute_cost"`).
    pub name: String,
    /// Free-form producer tag (e.g. a binary name or a daemon instance);
    /// empty for checkpoints migrated from version 1, which predates the
    /// field.
    pub created_by: String,
    /// The serialized network.
    pub model: Mlp,
}

/// Errors arising from checkpoint handling.
#[derive(Debug)]
pub enum CheckpointError {
    /// The JSON could not be parsed.
    Parse(serde_json::Error),
    /// The checkpoint has a version outside the supported range
    /// `[MIN_SUPPORTED_CHECKPOINT_VERSION, CHECKPOINT_VERSION]`.
    UnsupportedVersion {
        /// Version found in the document.
        found: u32,
        /// Oldest version this build loads.
        min_supported: u32,
        /// Newest version this build loads (the current format).
        supported: u32,
    },
    /// The document parsed but is not a checkpoint envelope (e.g. the
    /// version header is missing or not an integer).
    MalformedHeader {
        /// What was wrong.
        reason: String,
    },
    /// Reading or writing the checkpoint file failed.
    Io {
        /// The file path involved.
        path: String,
        /// The rendered I/O error.
        error: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Parse(e) => write!(f, "failed to parse checkpoint: {e}"),
            CheckpointError::UnsupportedVersion {
                found,
                min_supported,
                supported,
            } => write!(
                f,
                "checkpoint version {found} is not supported \
                 (this build supports versions {min_supported} through {supported})"
            ),
            CheckpointError::MalformedHeader { reason } => {
                write!(f, "malformed checkpoint header: {reason}")
            }
            CheckpointError::Io { path, error } => {
                write!(f, "checkpoint I/O failed for {path}: {error}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

/// Validates a version header against the supported range.
///
/// # Errors
///
/// [`CheckpointError::UnsupportedVersion`] when outside
/// `[MIN_SUPPORTED_CHECKPOINT_VERSION, CHECKPOINT_VERSION]`.
pub fn check_version(found: u32) -> Result<(), CheckpointError> {
    if !(MIN_SUPPORTED_CHECKPOINT_VERSION..=CHECKPOINT_VERSION).contains(&found) {
        return Err(CheckpointError::UnsupportedVersion {
            found,
            min_supported: MIN_SUPPORTED_CHECKPOINT_VERSION,
            supported: CHECKPOINT_VERSION,
        });
    }
    Ok(())
}

/// Reads the `version` header out of a parsed envelope.
fn header_version(map: &[(String, Value)]) -> Result<u32, CheckpointError> {
    match map.iter().find(|(k, _)| k == "version") {
        Some((_, Value::UInt(v))) => {
            u32::try_from(*v).map_err(|_| CheckpointError::MalformedHeader {
                reason: format!("version {v} out of range"),
            })
        }
        Some((_, Value::Int(v))) if *v >= 0 => {
            u32::try_from(*v).map_err(|_| CheckpointError::MalformedHeader {
                reason: format!("version {v} out of range"),
            })
        }
        Some((_, other)) => Err(CheckpointError::MalformedHeader {
            reason: format!("version header is {}, expected an integer", other.kind()),
        }),
        None => Err(CheckpointError::MalformedHeader {
            reason: "missing version header".into(),
        }),
    }
}

/// Migrates a parsed envelope map to the current version in place:
/// version 1 predates `created_by`, which is defaulted to the empty
/// string. Returns the (already validated) version it migrated from.
fn migrate_header(map: &mut Vec<(String, Value)>) -> Result<u32, CheckpointError> {
    let found = header_version(map)?;
    check_version(found)?;
    if found < 2 && !map.iter().any(|(k, _)| k == "created_by") {
        map.push(("created_by".to_string(), Value::Str(String::new())));
    }
    for (k, v) in map.iter_mut() {
        if k == "version" {
            *v = Value::UInt(u64::from(CHECKPOINT_VERSION));
        }
    }
    Ok(found)
}

impl Checkpoint {
    /// Wraps a model into a versioned checkpoint.
    pub fn new(name: impl Into<String>, model: Mlp) -> Self {
        Self {
            version: CHECKPOINT_VERSION,
            name: name.into(),
            created_by: String::new(),
            model,
        }
    }

    /// Sets the producer tag (builder-style).
    #[must_use]
    pub fn with_created_by(mut self, created_by: impl Into<String>) -> Self {
        self.created_by = created_by.into();
        self
    }

    /// Serializes to a JSON string.
    ///
    /// # Panics
    ///
    /// Never panics in practice: the checkpoint contains only serializable
    /// plain data.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoints are always serializable")
    }

    /// Parses a checkpoint from JSON, validating the format version and
    /// migrating supported prior versions forward.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Parse`] on malformed JSON,
    /// [`CheckpointError::UnsupportedVersion`] on a version outside the
    /// supported range, [`CheckpointError::MalformedHeader`] when the
    /// version header is absent or not an integer.
    pub fn from_json(json: &str) -> Result<Self, CheckpointError> {
        let value = serde_json::parse_value(json).map_err(CheckpointError::Parse)?;
        let mut map = match value {
            Value::Map(m) => m,
            other => {
                return Err(CheckpointError::MalformedHeader {
                    reason: format!("checkpoint is {}, expected an object", other.kind()),
                })
            }
        };
        migrate_header(&mut map)?;
        Checkpoint::from_value(&Value::Map(map)).map_err(|e| CheckpointError::Parse(e.into()))
    }

    /// Writes the checkpoint to a file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the file cannot be written.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json()).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        })
    }

    /// Loads and version-checks a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the file cannot be read, otherwise the
    /// errors of [`Checkpoint::from_json`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, CheckpointError> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        })?;
        Self::from_json(&json)
    }
}

// ---- generic versioned envelope -------------------------------------------

/// Wraps any serializable payload in the versioned checkpoint envelope:
/// `{"version": .., "name": .., "created_by": .., "payload": ..}`.
pub fn envelope_to_json<T: Serialize>(name: &str, created_by: &str, payload: &T) -> String {
    let map = Value::Map(vec![
        (
            "version".to_string(),
            Value::UInt(u64::from(CHECKPOINT_VERSION)),
        ),
        ("name".to_string(), Value::Str(name.to_string())),
        ("created_by".to_string(), Value::Str(created_by.to_string())),
        ("payload".to_string(), payload.to_value()),
    ]);
    serde_json::to_string(&map).expect("envelopes are always serializable")
}

/// A deserialized envelope: header fields plus the typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<T> {
    /// The version the document was written with (before migration).
    pub version: u32,
    /// Artifact name.
    pub name: String,
    /// Producer tag; empty for version-1 documents, which predate it.
    pub created_by: String,
    /// The payload.
    pub payload: T,
}

/// Parses and version-checks an envelope produced by [`envelope_to_json`]
/// (or by a prior supported version of it).
///
/// # Errors
///
/// The same typed errors as [`Checkpoint::from_json`].
pub fn envelope_from_json<T: Deserialize>(json: &str) -> Result<Envelope<T>, CheckpointError> {
    let value = serde_json::parse_value(json).map_err(CheckpointError::Parse)?;
    let mut map = match value {
        Value::Map(m) => m,
        other => {
            return Err(CheckpointError::MalformedHeader {
                reason: format!("envelope is {}, expected an object", other.kind()),
            })
        }
    };
    let written = migrate_header(&mut map)?;
    let field = |key: &str| -> Result<&Value, CheckpointError> {
        map.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| CheckpointError::MalformedHeader {
                reason: format!("missing `{key}` field"),
            })
    };
    let name = field("name")?
        .as_str()
        .ok_or_else(|| CheckpointError::MalformedHeader {
            reason: "`name` is not a string".into(),
        })?
        .to_string();
    let created_by = field("created_by")?
        .as_str()
        .ok_or_else(|| CheckpointError::MalformedHeader {
            reason: "`created_by` is not a string".into(),
        })?
        .to_string();
    let payload = T::from_value(field("payload")?).map_err(|e| CheckpointError::Parse(e.into()))?;
    Ok(Envelope {
        version: written,
        name,
        created_by,
        payload,
    })
}

/// Writes an envelope-wrapped payload to a file.
///
/// # Errors
///
/// [`CheckpointError::Io`] when the file cannot be written.
pub fn save_envelope<T: Serialize>(
    path: impl AsRef<std::path::Path>,
    name: &str,
    created_by: &str,
    payload: &T,
) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    std::fs::write(path, envelope_to_json(name, created_by, payload)).map_err(|e| {
        CheckpointError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        }
    })
}

/// Loads an envelope-wrapped payload from a file.
///
/// # Errors
///
/// [`CheckpointError::Io`] when the file cannot be read, otherwise the
/// errors of [`envelope_from_json`].
pub fn load_envelope<T: Deserialize>(
    path: impl AsRef<std::path::Path>,
) -> Result<Envelope<T>, CheckpointError> {
    let path = path.as_ref();
    let json = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io {
        path: path.display().to_string(),
        error: e.to_string(),
    })?;
    envelope_from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Matrix;

    #[test]
    fn round_trip_preserves_predictions() {
        let mlp = Mlp::new(3, &[8, 4], 1, 9);
        let ckpt = Checkpoint::new("compute_cost", mlp.clone()).with_created_by("unit_test");
        let json = ckpt.to_json();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(back.name, "compute_cost");
        assert_eq!(back.created_by, "unit_test");
        assert_eq!(back.version, CHECKPOINT_VERSION);
        let x = Matrix::from_rows([vec![0.1, 0.2, 0.3]]);
        assert_eq!(mlp.forward(&x), back.model.forward(&x));
    }

    #[test]
    fn prior_version_header_round_trips_through_migration() {
        // A version-1 document: no `created_by` field, version header 1 —
        // exactly what a pre-upgrade binary wrote to disk. It must load,
        // migrate forward, and predict identically.
        let mlp = Mlp::new(2, &[4], 1, 3);
        let current = Checkpoint::new("legacy", mlp.clone());
        let v1_json = current
            .to_json()
            .replacen(
                &format!("\"version\":{CHECKPOINT_VERSION}"),
                "\"version\":1",
                1,
            )
            .replace(",\"created_by\":\"\"", "");
        assert!(!v1_json.contains("created_by"), "fixture must be v1-shaped");
        let back = Checkpoint::from_json(&v1_json).unwrap();
        assert_eq!(back.version, CHECKPOINT_VERSION, "migrated forward");
        assert_eq!(back.created_by, "", "defaulted by migration");
        assert_eq!(back.name, "legacy");
        let x = Matrix::from_rows([vec![0.5, -0.25]]);
        assert_eq!(mlp.forward(&x), back.model.forward(&x));
        // Re-serializing writes the current version.
        let rewritten = back.to_json();
        assert!(rewritten.contains(&format!("\"version\":{CHECKPOINT_VERSION}")));
    }

    #[test]
    fn rejects_unsupported_version_with_typed_error() {
        let mut ckpt = Checkpoint::new("m", Mlp::new(1, &[], 1, 0));
        ckpt.version = 999;
        let json = serde_json::to_string(&ckpt).unwrap();
        match Checkpoint::from_json(&json) {
            Err(CheckpointError::UnsupportedVersion {
                found,
                min_supported,
                supported,
            }) => {
                assert_eq!(found, 999);
                assert_eq!(min_supported, MIN_SUPPORTED_CHECKPOINT_VERSION);
                assert_eq!(supported, CHECKPOINT_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
        // Version 0 predates the format entirely.
        let json0 = json.replacen("\"version\":999", "\"version\":0", 1);
        assert!(matches!(
            Checkpoint::from_json(&json0),
            Err(CheckpointError::UnsupportedVersion { found: 0, .. })
        ));
    }

    #[test]
    fn rejects_garbage_and_missing_header() {
        assert!(matches!(
            Checkpoint::from_json("not json"),
            Err(CheckpointError::Parse(_))
        ));
        assert!(matches!(
            Checkpoint::from_json("{\"name\":\"x\"}"),
            Err(CheckpointError::MalformedHeader { .. })
        ));
        assert!(matches!(
            Checkpoint::from_json("[1,2,3]"),
            Err(CheckpointError::MalformedHeader { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let err = CheckpointError::UnsupportedVersion {
            found: 7,
            min_supported: 1,
            supported: 2,
        };
        let msg = err.to_string();
        assert!(msg.contains('7') && msg.contains('1') && msg.contains('2'));
        let io = CheckpointError::Io {
            path: "/tmp/x.json".into(),
            error: "denied".into(),
        };
        assert!(io.to_string().contains("/tmp/x.json"));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("nshard_nn_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let ckpt = Checkpoint::new("disk", Mlp::new(2, &[3], 1, 1)).with_created_by("test");
        ckpt.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back, ckpt);
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(
            Checkpoint::load(dir.join("missing.json")),
            Err(CheckpointError::Io { .. })
        ));
    }

    #[test]
    fn envelope_round_trips_arbitrary_payloads() {
        let payload = vec![1.5f64, 2.5, -3.0];
        let json = envelope_to_json("weights", "daemon", &payload);
        let env: Envelope<Vec<f64>> = envelope_from_json(&json).unwrap();
        assert_eq!(env.version, CHECKPOINT_VERSION);
        assert_eq!(env.name, "weights");
        assert_eq!(env.created_by, "daemon");
        assert_eq!(env.payload, payload);
    }

    #[test]
    fn envelope_migrates_prior_version() {
        let json = envelope_to_json("w", "x", &vec![1u32, 2])
            .replacen(
                &format!("\"version\":{CHECKPOINT_VERSION}"),
                "\"version\":1",
                1,
            )
            .replace(",\"created_by\":\"x\"", "");
        let env: Envelope<Vec<u32>> = envelope_from_json(&json).unwrap();
        assert_eq!(env.version, 1, "reports the version it was written with");
        assert_eq!(env.created_by, "");
        assert_eq!(env.payload, vec![1, 2]);
    }
}
