//! # nshard-nn — a minimal dense neural-network library
//!
//! The paper's cost models are tiny MLPs (a 128-32 shared table encoder, a
//! 32-64 head, and a 128-64-32-16 communication model) trained with Adam on
//! an MSE loss. There is no mature pure-Rust DL framework in this
//! environment, so this crate implements exactly the pieces those models
//! need, from scratch:
//!
//! * [`tensor::Matrix`] — a row-major `f32` matrix with the handful of ops
//!   backprop needs,
//! * [`gemm`] — cache-blocked, register-tiled GEMM kernels (bit-identical
//!   to the scalar reference) with a packed weight layout,
//! * [`quant`] — int8 symmetric weight quantization for inference-only
//!   forward passes with a recorded error bound,
//! * [`layer::Dense`] + ReLU — fully connected layers with manual gradients,
//! * [`mlp::Mlp`] — an MLP container with `forward` / `backward`,
//! * [`adam::Adam`] — the Adam optimizer,
//! * [`loss`] — mean-squared-error and its gradient,
//! * [`train`] — a mini-batch trainer with train/valid/test splits and
//!   best-on-validation model selection (the paper trains 1000 epochs and
//!   keeps the best validation checkpoint),
//! * [`serialize`] — serde round-tripping for model checkpoints.
//!
//! Everything is deterministic given explicit seeds.
//!
//! ## Example
//!
//! Fit `y = 2x₀ - x₁`:
//!
//! ```
//! use nshard_nn::{Dataset, Matrix, Mlp, TrainConfig, Trainer};
//!
//! let xs: Vec<[f32; 2]> = (0..200).map(|i| [i as f32 / 200.0, (i % 7) as f32 / 7.0]).collect();
//! let x = Matrix::from_rows(xs.iter().map(|r| r.to_vec()));
//! let y = Matrix::from_rows(xs.iter().map(|r| vec![2.0 * r[0] - r[1]]));
//! let dataset = Dataset::new(x, y).unwrap();
//!
//! let mlp = Mlp::new(2, &[16], 1, 0);
//! let config = TrainConfig { epochs: 300, batch_size: 32, ..TrainConfig::default() };
//! let mut trainer = Trainer::new(config);
//! let report = trainer.fit(mlp, &dataset, 42);
//! assert!(report.test_mse < 0.05, "test MSE {}", report.test_mse);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adam;
pub mod gemm;
pub mod layer;
pub mod loss;
pub mod mlp;
pub mod quant;
pub mod serialize;
pub mod tensor;
pub mod train;

pub use adam::Adam;
pub use layer::Dense;
pub use loss::{mse, mse_grad, mse_grad_scaled};
pub use mlp::{Gradients, Mlp, MlpCache, MlpScratch};
pub use quant::{QuantizedDense, QuantizedMlp};
pub use serialize::{
    envelope_from_json, envelope_to_json, load_envelope, save_envelope, Checkpoint,
    CheckpointError, Envelope, CHECKPOINT_VERSION, MIN_SUPPORTED_CHECKPOINT_VERSION,
};
pub use tensor::Matrix;
pub use train::{Dataset, Split, TrainConfig, TrainReport, Trainer, GRAD_SHARD_ROWS};
