//! Cache-blocked, autovectorization-friendly GEMM kernels.
//!
//! Every plan the search evaluates bottoms out in a handful of tiny dense
//! matrix products (`batch × 8 · 8 × 128`, `batch × 128 · 128 × 32`, …), so
//! these kernels are written for one thing: letting LLVM emit wide vector
//! code without `unsafe`. Three ingredients make that happen:
//!
//! * **register tiling** — the blocked kernel computes an `MR × NR`
//!   (4 × 16) tile of the output at a time, keeping 64 scalar accumulators
//!   in registers across the whole `k` loop,
//! * **fixed-width inner loops** — the innermost loops run over `[f32; NR]`
//!   arrays with compile-time bounds, so there are no data-dependent
//!   branches and no bounds checks in the hot loop,
//! * **packed panels** — [`PackedGemm`] stores the right-hand operand as
//!   column panels of width `NR` (`[ceil(n/NR)][k][NR]`, zero-padded), so
//!   the `k` loop walks both operands contiguously. Layers pack their
//!   weights once at load time and reuse the panels for every forward pass.
//!
//! # Bit-exactness contract
//!
//! All f32 kernels in this module produce **bit-identical** results to the
//! scalar reference [`gemm_ref_into`]: each output element is accumulated in
//! a single `f32` accumulator over `k` in ascending order, exactly like the
//! reference's `i, k, j` loop nest. Blocking only reorders *which elements*
//! are computed when, never the additions *within* one element, and no
//! fused-multiply-add or re-association is introduced (rustc does not
//! contract float expressions). The conformance suite in
//! `tests/kernel_conformance.rs` pins this across odd shapes.

/// Rows of the output register tile.
pub const MR: usize = 4;
/// Columns of the output register tile (and packed panel width).
pub const NR: usize = 16;

/// Scalar reference kernel: `out = a · b` with `a: m × k`, `b: k × n`, both
/// row-major.
///
/// This is the historical `Matrix::matmul` loop nest (minus its
/// `a == 0.0` skip, which was a data-dependent branch in the hot loop and a
/// `-0.0`/NaN behavior hazard). Each `out[i][j]` accumulates
/// `a[i][k] * b[k][j]` over `k` in ascending order. The blocked kernels are
/// tested bit-identical against this.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn gemm_ref_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_ref_into: lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm_ref_into: rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm_ref_into: out length mismatch");
    out.fill(0.0);
    if n == 0 {
        return;
    }
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (b_row, &av) in b.chunks_exact(n).zip(a_row) {
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Blocked kernel: `out = a · b`, both operands row-major and unpacked.
///
/// Tiles the output into `MR × NR` register blocks with the `k` loop
/// innermost and sequential, so every output element sees the exact same
/// ascending-`k` accumulation as [`gemm_ref_into`] (bit-identical results).
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn gemm_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_into: lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm_into: rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm_into: out length mismatch");
    if n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let n_main = n - n % NR;
    let m_main = m - m % MR;
    let mut i = 0;
    while i < m_main {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let mut j = 0;
        while j < n_main {
            let mut acc = [[0.0f32; NR]; MR];
            for ((((b_row, &v0), &v1), &v2), &v3) in
                b.chunks_exact(n).zip(a0).zip(a1).zip(a2).zip(a3)
            {
                let bk: &[f32; NR] = b_row[j..j + NR].try_into().expect("NR-wide tile");
                let av = [v0, v1, v2, v3];
                for r in 0..MR {
                    for c in 0..NR {
                        acc[r][c] += av[r] * bk[c];
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                out[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(acc_row);
            }
            j += NR;
        }
        for j in n_main..n {
            let mut acc = [0.0f32; MR];
            for ((((b_row, &v0), &v1), &v2), &v3) in
                b.chunks_exact(n).zip(a0).zip(a1).zip(a2).zip(a3)
            {
                let bv = b_row[j];
                acc[0] += v0 * bv;
                acc[1] += v1 * bv;
                acc[2] += v2 * bv;
                acc[3] += v3 * bv;
            }
            for (r, &v) in acc.iter().enumerate() {
                out[(i + r) * n + j] = v;
            }
        }
        i += MR;
    }
    while i < m {
        let a_row = &a[i * k..(i + 1) * k];
        let mut j = 0;
        while j < n_main {
            let mut acc = [0.0f32; NR];
            for (b_row, &av) in b.chunks_exact(n).zip(a_row) {
                let bk: &[f32; NR] = b_row[j..j + NR].try_into().expect("NR-wide tile");
                for c in 0..NR {
                    acc[c] += av * bk[c];
                }
            }
            out[i * n + j..i * n + j + NR].copy_from_slice(&acc);
            j += NR;
        }
        for j in n_main..n {
            let mut acc = 0.0f32;
            for (b_row, &av) in b.chunks_exact(n).zip(a_row) {
                acc += av * b_row[j];
            }
            out[i * n + j] = acc;
        }
        i += 1;
    }
}

/// A right-hand operand pre-packed into `NR`-wide column panels.
///
/// Layout: `ceil(n / NR)` panels, each `k × NR` row-major, so panel `p`
/// holds columns `p*NR .. p*NR+NR` of the original `k × n` matrix with the
/// last panel zero-padded. The `k` loop of [`PackedGemm::gemm_into`] then
/// streams both operands contiguously. Padded lanes accumulate zeros and
/// are never stored, so results stay bit-identical to [`gemm_ref_into`].
#[derive(Debug, Clone, PartialEq)]
pub struct PackedGemm {
    k: usize,
    n: usize,
    panels: Vec<f32>,
}

impl PackedGemm {
    /// Packs a row-major `k × n` matrix into column panels.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k * n`.
    pub fn pack(b: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(b.len(), k * n, "pack: operand length mismatch");
        let n_panels = n.div_ceil(NR);
        let mut panels = vec![0.0f32; n_panels * k * NR];
        for p in 0..n_panels {
            let j = p * NR;
            let w = (n - j).min(NR);
            let panel = &mut panels[p * k * NR..(p + 1) * k * NR];
            for (kk, dst) in panel.chunks_exact_mut(NR).enumerate() {
                dst[..w].copy_from_slice(&b[kk * n + j..kk * n + j + w]);
            }
        }
        Self { k, n, panels }
    }

    /// Inner (contraction) dimension `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `out = a · B` where `a` is row-major `m × k` and `B` is the packed
    /// operand. Bit-identical to [`gemm_ref_into`] on the unpacked matrix.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match the given dimensions.
    pub fn gemm_into(&self, a: &[f32], m: usize, out: &mut [f32]) {
        let (k, n) = (self.k, self.n);
        assert_eq!(a.len(), m * k, "packed gemm: lhs length mismatch");
        assert_eq!(out.len(), m * n, "packed gemm: out length mismatch");
        if n == 0 {
            return;
        }
        if k == 0 {
            out.fill(0.0);
            return;
        }
        let m_main = m - m % MR;
        let mut i = 0;
        while i < m_main {
            let a0 = &a[i * k..(i + 1) * k];
            let a1 = &a[(i + 1) * k..(i + 2) * k];
            let a2 = &a[(i + 2) * k..(i + 3) * k];
            let a3 = &a[(i + 3) * k..(i + 4) * k];
            for (p, panel) in self.panels.chunks_exact(k * NR).enumerate() {
                let j = p * NR;
                let w = (n - j).min(NR);
                let mut acc = [[0.0f32; NR]; MR];
                for ((((bk, &v0), &v1), &v2), &v3) in
                    panel.chunks_exact(NR).zip(a0).zip(a1).zip(a2).zip(a3)
                {
                    let bk: &[f32; NR] = bk.try_into().expect("NR-wide panel row");
                    let av = [v0, v1, v2, v3];
                    for r in 0..MR {
                        for c in 0..NR {
                            acc[r][c] += av[r] * bk[c];
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    out[(i + r) * n + j..(i + r) * n + j + w].copy_from_slice(&acc_row[..w]);
                }
            }
            i += MR;
        }
        while i < m {
            let a_row = &a[i * k..(i + 1) * k];
            for (p, panel) in self.panels.chunks_exact(k * NR).enumerate() {
                let j = p * NR;
                let w = (n - j).min(NR);
                let mut acc = [0.0f32; NR];
                for (bk, &av) in panel.chunks_exact(NR).zip(a_row) {
                    let bk: &[f32; NR] = bk.try_into().expect("NR-wide panel row");
                    for c in 0..NR {
                        acc[c] += av * bk[c];
                    }
                }
                out[i * n + j..i * n + j + w].copy_from_slice(&acc[..w]);
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(m: usize, k: usize, n: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.73).cos()).collect();
        (a, b)
    }

    #[test]
    fn blocked_matches_reference_bitwise() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 8, 8),
            (5, 7, 9),
            (3, 128, 32),
            (17, 8, 128),
            (1, 128, 1),
            (12, 1, 40),
        ] {
            let (a, b) = dummy(m, k, n);
            let mut want = vec![0.0f32; m * n];
            let mut got = vec![0.0f32; m * n];
            gemm_ref_into(&a, &b, m, k, n, &mut want);
            gemm_into(&a, &b, m, k, n, &mut got);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "blocked kernel diverged at m={m} k={k} n={n}"
            );
            let packed = PackedGemm::pack(&b, k, n);
            let mut got_packed = vec![0.0f32; m * n];
            packed.gemm_into(&a, m, &mut got_packed);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got_packed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "packed kernel diverged at m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn zero_k_is_zero() {
        let mut out = vec![1.0f32; 6];
        gemm_into(&[], &[], 2, 0, 3, &mut out);
        assert_eq!(out, vec![0.0; 6]);
        let packed = PackedGemm::pack(&[], 0, 3);
        let mut out = vec![1.0f32; 6];
        packed.gemm_into(&[], 2, &mut out);
        assert_eq!(out, vec![0.0; 6]);
    }

    #[test]
    fn pack_round_trips_through_identity() {
        // Multiplying by identity reproduces the packed operand row by row.
        let (_, b) = dummy(0, 5, 11);
        let packed = PackedGemm::pack(&b, 5, 11);
        let eye: Vec<f32> = (0..25)
            .map(|i| if i % 6 == 0 { 1.0 } else { 0.0 })
            .collect();
        let mut out = vec![0.0f32; 55];
        packed.gemm_into(&eye, 5, &mut out);
        assert_eq!(out, b);
    }
}
