//! A row-major `f32` matrix with the operations backpropagation needs.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32` values.
///
/// This is deliberately minimal: just what dense-layer forward/backward
/// passes require (matmul with optional transposes, element-wise maps,
/// column sums). No broadcasting, no views, no BLAS.
///
/// # Example
///
/// ```
/// use nshard_nn::Matrix;
///
/// let a = Matrix::from_rows([vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix.
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer has the wrong length");
        Self { rows, cols, data }
    }

    /// Builds a matrix from an iterator of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows<I, R>(rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[f32]>,
    {
        let mut data = Vec::new();
        let mut n_rows = 0;
        let mut n_cols = None;
        for row in rows {
            let row = row.as_ref();
            match n_cols {
                None => n_cols = Some(row.len()),
                Some(c) => assert_eq!(c, row.len(), "rows must have equal lengths"),
            }
            data.extend_from_slice(row);
            n_rows += 1;
        }
        Self {
            rows: n_rows,
            cols: n_cols.unwrap_or(0),
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other`, via the cache-blocked kernel in [`crate::gemm`].
    ///
    /// Bit-identical to [`Matrix::matmul_ref`] (the kernels accumulate each
    /// output element over `k` in the same ascending order).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self · other` into a caller-provided output matrix, reusing its
    /// allocation. The output is reshaped to `self.rows × other.cols`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        out.reset(self.rows, other.cols);
        crate::gemm::gemm_into(
            &self.data,
            &other.data,
            self.rows,
            self.cols,
            other.cols,
            &mut out.data,
        );
    }

    /// `self · other` through the scalar reference kernel.
    ///
    /// This is the historical scalar loop nest the blocked kernels are
    /// conformance-tested against; use [`Matrix::matmul`] in real code.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_ref(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::gemm::gemm_ref_into(
            &self.data,
            &other.data,
            self.rows,
            self.cols,
            other.cols,
            &mut out.data,
        );
        out
    }

    /// Reshapes to `rows × cols` and zero-fills, reusing the allocation.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` an exact copy of `other`, reusing the allocation.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let dot: f32 = a_row.iter().zip(b_row).map(|(&a, &b)| a * b).sum();
                out.data[i * other.rows + j] = dot;
            }
        }
        out
    }

    /// Adds `bias` to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols`.
    pub fn add_row_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// `self += other * scale`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(self.rows, other.rows, "add_scaled shape mismatch");
        assert_eq!(self.cols, other.cols, "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Sums all rows into a single row vector.
    pub fn sum_rows(&self) -> Vec<f32> {
        self.col_sums()
    }

    /// Selects the given rows into a new matrix (used for mini-batching).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows([vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows([vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows([vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let a = Matrix::from_rows([vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows([vec![1.0, 0.0], vec![0.0, 1.0]]);
        // aᵀ (3x2) · b (2x2) = 3x2
        let c = a.t_matmul(&b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(0, 1), 4.0);
        assert_eq!(c.get(2, 0), 3.0);
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let a = Matrix::from_rows([vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows([vec![5.0, 6.0], vec![7.0, 8.0]]);
        // a · bᵀ
        let c = a.matmul_t(&b);
        assert_eq!(c.get(0, 0), 1.0 * 5.0 + 2.0 * 6.0);
        assert_eq!(c.get(1, 1), 3.0 * 7.0 + 4.0 * 8.0);
    }

    #[test]
    fn bias_and_col_sums() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_bias(&[1.0, -2.0]);
        assert_eq!(m.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn select_rows_extracts() {
        let m = Matrix::from_rows([vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s, Matrix::from_rows([vec![3.0], vec![1.0]]));
    }

    #[test]
    fn map_inplace_applies() {
        let mut m = Matrix::from_rows([vec![-1.0, 2.0]]);
        m.map_inplace(|v| v.max(0.0));
        assert_eq!(m, Matrix::from_rows([vec![0.0, 2.0]]));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows([vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows([vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_rows([vec![1.5, -2.5]]);
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    proptest! {
        #[test]
        fn matmul_t_consistency(
            a_vals in proptest::collection::vec(-10.0f32..10.0, 6),
            b_vals in proptest::collection::vec(-10.0f32..10.0, 6),
        ) {
            // a: 2x3, b: 2x3 → a · bᵀ : 2x2, (a·bᵀ)ᵀ = b·aᵀ
            let a = Matrix::from_flat(2, 3, a_vals);
            let b = Matrix::from_flat(2, 3, b_vals);
            let ab = a.matmul_t(&b);
            let ba = b.matmul_t(&a);
            for i in 0..2 {
                for j in 0..2 {
                    prop_assert!((ab.get(i, j) - ba.get(j, i)).abs() < 1e-4);
                }
            }
        }

        #[test]
        fn add_scaled_then_subtract_is_identity(
            vals in proptest::collection::vec(-10.0f32..10.0, 8),
        ) {
            let m0 = Matrix::from_flat(2, 4, vals.clone());
            let mut m = m0.clone();
            let delta = Matrix::from_flat(2, 4, vals);
            m.add_scaled(&delta, 0.5);
            m.add_scaled(&delta, -0.5);
            for (a, b) in m.as_slice().iter().zip(m0.as_slice()) {
                prop_assert!((a - b).abs() < 1e-5);
            }
        }
    }
}
