//! Mean-squared-error loss, the paper's training objective (Equation 2).

use crate::tensor::Matrix;

/// Mean squared error between predictions and targets, averaged over every
/// element.
///
/// # Panics
///
/// Panics if shapes differ or the matrices are empty.
///
/// ```
/// use nshard_nn::{mse, Matrix};
///
/// let pred = Matrix::from_rows([vec![1.0], vec![3.0]]);
/// let target = Matrix::from_rows([vec![0.0], vec![3.0]]);
/// assert_eq!(mse(&pred, &target), 0.5);
/// ```
pub fn mse(pred: &Matrix, target: &Matrix) -> f32 {
    assert_eq!(pred.rows(), target.rows(), "mse shape mismatch");
    assert_eq!(pred.cols(), target.cols(), "mse shape mismatch");
    let n = pred.rows() * pred.cols();
    assert!(n > 0, "mse of empty matrices");
    pred.as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f32>()
        / n as f32
}

/// Gradient of [`mse`] with respect to the predictions:
/// `2 (pred - target) / n`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse_grad(pred: &Matrix, target: &Matrix) -> Matrix {
    mse_grad_scaled(pred, target, pred.rows() * pred.cols())
}

/// Gradient of the squared error summed over this shard and divided by
/// `total_elems`: `2 (pred - target) / total_elems`.
///
/// This is the per-shard building block of the data-parallel trainer: each
/// row shard of a mini-batch computes its gradient against the *whole*
/// batch's element count, so the fixed-order sum over shards equals the
/// full-batch [`mse_grad`] (up to float re-association — which is why the
/// shard decomposition is fixed and never depends on the thread count).
/// With `total_elems == pred.rows() * pred.cols()` this is exactly
/// [`mse_grad`].
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse_grad_scaled(pred: &Matrix, target: &Matrix, total_elems: usize) -> Matrix {
    assert_eq!(pred.rows(), target.rows(), "mse shape mismatch");
    assert_eq!(pred.cols(), target.cols(), "mse shape mismatch");
    let n = total_elems.max(1) as f32;
    let mut grad = pred.clone();
    for (g, &t) in grad.as_mut_slice().iter_mut().zip(target.as_slice()) {
        *g = 2.0 * (*g - t) / n;
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_for_perfect_prediction() {
        let m = Matrix::from_rows([vec![1.0, 2.0]]);
        assert_eq!(mse(&m, &m), 0.0);
    }

    #[test]
    fn known_value() {
        let pred = Matrix::from_rows([vec![2.0, 0.0]]);
        let target = Matrix::from_rows([vec![0.0, 0.0]]);
        assert_eq!(mse(&pred, &target), 2.0);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let pred = Matrix::from_rows([vec![1.0, -2.0], vec![0.5, 3.0]]);
        let target = Matrix::from_rows([vec![0.0, 1.0], vec![0.5, 2.0]]);
        let g = mse_grad(&pred, &target);
        let eps = 1e-3;
        let base = mse(&pred, &target);
        for r in 0..2 {
            for c in 0..2 {
                let mut p = pred.clone();
                p.set(r, c, p.get(r, c) + eps);
                let num = (mse(&p, &target) - base) / eps;
                assert!((num - g.get(r, c)).abs() < 1e-2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = mse(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1));
    }

    proptest! {
        #[test]
        fn mse_is_nonnegative(
            vals in proptest::collection::vec(-100.0f32..100.0, 8),
            tvals in proptest::collection::vec(-100.0f32..100.0, 8),
        ) {
            let p = Matrix::from_flat(2, 4, vals);
            let t = Matrix::from_flat(2, 4, tvals);
            prop_assert!(mse(&p, &t) >= 0.0);
        }
    }
}
