//! Random sharding and the greedy heuristic baselines (Appendix E.1).
//!
//! Each greedy baseline (1) scores every table with a heuristic cost
//! function and (2) assigns tables in descending score order to the device
//! with the lowest accumulated score. Faithful to the original systems,
//! none of them check the memory budget or split columns — memory failures
//! surface later, at evaluation time, exactly as in the paper's protocol.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nshard_core::{PlanError, ShardingAlgorithm, ShardingPlan};
use nshard_data::{ShardingTask, TableConfig};

use crate::plan_from_assignment;

/// Uniform random table-wise sharding (the paper's weakest baseline).
#[derive(Debug, Clone, Copy)]
pub struct RandomSharding {
    seed: u64,
}

impl RandomSharding {
    /// Creates a random sharder with an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl ShardingAlgorithm for RandomSharding {
    fn name(&self) -> &str {
        "random"
    }

    fn shard(&self, task: &ShardingTask) -> Result<ShardingPlan, PlanError> {
        // Derive the task's own stream from its content so one sharder
        // instance handles many tasks independently.
        let mut hash = self.seed;
        for t in task.tables() {
            hash = hash
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(u64::from(t.id().0) ^ u64::from(t.dim()));
        }
        let mut rng = StdRng::seed_from_u64(hash);
        let device_of = (0..task.num_tables())
            .map(|_| rng.random_range(0..task.num_devices()))
            .collect();
        plan_from_assignment(task, device_of)
    }
}

/// Greedy allocation balancing `cost_fn` (the shared skeleton of the four
/// heuristic baselines).
fn greedy_by(task: &ShardingTask, cost_fn: impl Fn(&TableConfig) -> f64) -> Vec<usize> {
    let costs: Vec<f64> = task.tables().iter().map(&cost_fn).collect();
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| costs[b].partial_cmp(&costs[a]).expect("finite costs"));
    let mut device_cost = vec![0.0f64; task.num_devices()];
    let mut device_of = vec![0usize; costs.len()];
    for &i in &order {
        let g = device_cost
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite costs"))
            .map(|(g, _)| g)
            .expect("at least one device");
        device_of[i] = g;
        device_cost[g] += costs[i];
    }
    device_of
}

macro_rules! greedy_baseline {
    ($(#[$doc:meta])* $name:ident, $label:literal, $cost:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name;

        impl ShardingAlgorithm for $name {
            fn name(&self) -> &str {
                $label
            }

            fn shard(&self, task: &ShardingTask) -> Result<ShardingPlan, PlanError> {
                #[allow(clippy::redundant_closure_call)]
                let device_of = greedy_by(task, $cost);
                plan_from_assignment(task, device_of)
            }
        }
    };
}

greedy_baseline!(
    /// Balances table sizes (bytes) — reduces out-of-memory risk and
    /// correlates with dimension.
    SizeGreedy,
    "size_greedy",
    |t: &TableConfig| t.memory_bytes() as f64
);

greedy_baseline!(
    /// Balances table dimensions — the determinant of both computation and
    /// communication workloads.
    DimGreedy,
    "dim_greedy",
    |t: &TableConfig| f64::from(t.dim())
);

greedy_baseline!(
    /// Balances dimension × pooling factor — the embedding-lookup workload.
    LookupGreedy,
    "lookup_greedy",
    |t: &TableConfig| f64::from(t.dim()) * t.pooling_factor()
);

greedy_baseline!(
    /// Balances dimension × pooling factor × size — the most comprehensive
    /// heuristic of the four.
    SizeLookupGreedy,
    "size_lookup_greedy",
    |t: &TableConfig| f64::from(t.dim()) * t.pooling_factor() * (t.memory_bytes() as f64).log2()
);

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_data::{TableId, TablePool};

    fn task() -> ShardingTask {
        let pool = TablePool::synthetic_dlrm(60, 3);
        ShardingTask::sample(&pool, 4, 10..=20, 64, 5)
    }

    #[test]
    fn all_baselines_produce_full_assignments() {
        let task = task();
        let algos: Vec<Box<dyn ShardingAlgorithm>> = vec![
            Box::new(RandomSharding::new(1)),
            Box::new(SizeGreedy),
            Box::new(DimGreedy),
            Box::new(LookupGreedy),
            Box::new(SizeLookupGreedy),
        ];
        for algo in algos {
            let plan = algo.shard(&task).unwrap();
            assert_eq!(
                plan.sharded_tables().len(),
                task.num_tables(),
                "{}",
                algo.name()
            );
            assert!(plan.num_column_splits() == 0);
            assert!(plan.device_of().iter().all(|&d| d < 4));
        }
    }

    #[test]
    fn random_is_seed_deterministic_per_task() {
        let task = task();
        let a = RandomSharding::new(7).shard(&task).unwrap();
        let b = RandomSharding::new(7).shard(&task).unwrap();
        let c = RandomSharding::new(8).shard(&task).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dim_greedy_balances_dimensions() {
        let task = task();
        let plan = DimGreedy.shard(&task).unwrap();
        let dims = plan.device_dims();
        let max = dims.iter().cloned().fold(0.0, f64::max);
        let min = dims.iter().cloned().fold(f64::INFINITY, f64::min);
        // Greedy on sorted dims keeps the spread below the largest table.
        let largest = task
            .tables()
            .iter()
            .map(|t| f64::from(t.dim()))
            .fold(0.0, f64::max);
        assert!(
            max - min <= largest,
            "spread {} > largest {largest}",
            max - min
        );
    }

    #[test]
    fn size_greedy_balances_bytes() {
        let task = task();
        let plan = SizeGreedy.shard(&task).unwrap();
        let bytes = plan.device_bytes();
        let largest = task
            .tables()
            .iter()
            .map(TableConfig::memory_bytes)
            .max()
            .unwrap();
        let max = *bytes.iter().max().unwrap();
        let min = *bytes.iter().min().unwrap();
        assert!(max - min <= largest);
    }

    #[test]
    fn greedy_ignores_memory_budget_by_design() {
        // A task that cannot fit: the baselines still return a plan; the
        // OOM surfaces at evaluation time (the paper's "-" protocol).
        let huge = TableConfig::new(TableId(0), 128, 32 << 20, 8.0, 1.0); // 16 GB
        let t = ShardingTask::new(vec![huge], 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536);
        let plan = SizeGreedy.shard(&t).unwrap();
        assert!(plan.validate(&t).is_err()); // over budget, as expected
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SizeGreedy.name(), "size_greedy");
        assert_eq!(DimGreedy.name(), "dim_greedy");
        assert_eq!(LookupGreedy.name(), "lookup_greedy");
        assert_eq!(SizeLookupGreedy.name(), "size_lookup_greedy");
        assert_eq!(RandomSharding::new(0).name(), "random");
    }
}
