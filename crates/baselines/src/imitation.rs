//! Self-imitation learning from sharding logs (Appendix H of the paper).
//!
//! Production sharding services accumulate logs of (task, plan) pairs.
//! The paper's Appendix H proposes selecting the highly-rewarded plans —
//! e.g. NeuroShard's own outputs — and training a policy with *supervised*
//! losses to reproduce them, yielding a sharder that skips the online
//! search entirely: one greedy rollout of the learned policy instead of
//! `O(L·K·N·M·T·D)` cost-model queries.
//!
//! The trained [`ImitationSharder`] trades a little plan quality for a
//! large speedup (see the `ext_imitation` experiment binary), exactly the
//! trade Appendix H anticipates. Column-wise sharding is handled by a
//! deterministic pre-splitting pass (oversized shards are split until they
//! fit), since the imitation policy itself only makes table-wise choices.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use nshard_core::{apply_split_plan, PlanError, ShardingAlgorithm, ShardingPlan, SplitStep};
use nshard_cost::table_features;
use nshard_data::{ShardingTask, TableConfig};
use nshard_nn::{Adam, Gradients, Matrix, Mlp};

/// Number of device-state features appended to each table's features
/// (relative bytes, dimension and lookup load).
const DEVICE_FEATURES: usize = 3;

/// A log of solved sharding tasks — the training data of Appendix H's
/// self-imitation strategy.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemLog {
    entries: Vec<LogEntry>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LogEntry {
    /// The column/row-wise sharded tables the expert placed.
    sharded_tables: Vec<TableConfig>,
    /// The expert's device per sharded table.
    device_of: Vec<usize>,
    num_devices: usize,
    batch_size: u32,
}

impl SystemLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records one solved task (typically a NeuroShard outcome).
    pub fn record(&mut self, task: &ShardingTask, plan: &ShardingPlan) {
        self.entries.push(LogEntry {
            sharded_tables: plan.sharded_tables().to_vec(),
            device_of: plan.device_of().to_vec(),
            num_devices: plan.num_devices(),
            batch_size: task.batch_size(),
        });
    }
}

/// A sharding policy distilled from a [`SystemLog`] by supervised
/// (cross-entropy) imitation.
///
/// # Example
///
/// ```no_run
/// use nshard_baselines::{ImitationSharder, ShardingAlgorithm, SystemLog};
/// # let log = SystemLog::new();
/// # let task: nshard_data::ShardingTask = todo!();
/// let sharder = ImitationSharder::fit(&log, 30, 0);
/// let plan = sharder.shard(&task)?;
/// # Ok::<(), nshard_core::PlanError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImitationSharder {
    policy: Mlp,
}

impl ImitationSharder {
    /// Trains a policy to imitate the log's plans for `epochs` passes.
    ///
    /// # Panics
    ///
    /// Panics if the log is empty.
    pub fn fit(log: &SystemLog, epochs: usize, seed: u64) -> Self {
        assert!(!log.is_empty(), "cannot imitate an empty log");
        let input_dim = nshard_cost::TABLE_FEATURE_DIM + DEVICE_FEATURES;
        let mut policy = Mlp::new(input_dim, &[64, 32], 1, seed);
        let mut adam = Adam::new(&policy, 2e-3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1417);

        let mut order: Vec<usize> = (0..log.entries.len()).collect();
        for _epoch in 0..epochs {
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for &e in &order {
                let entry = &log.entries[e];
                let mut grads = Gradients::zeros_like(&policy);
                let steps = replay(entry, |inputs, label| {
                    let x = Matrix::from_rows(inputs);
                    let (scores, cache) = policy.forward_cached(&x);
                    let probs = softmax(scores.as_slice());
                    // Cross-entropy gradient: p - onehot(label).
                    let mut dy = Matrix::zeros(inputs.len(), 1);
                    for (g, &p) in probs.iter().enumerate() {
                        let indicator = if g == label { 1.0 } else { 0.0 };
                        dy.set(g, 0, (p - indicator) as f32);
                    }
                    let (_, g) = policy.backward(&cache, &dy);
                    grads.accumulate(&g, 1.0);
                });
                if steps > 0 {
                    // Average per decision so long tasks don't dominate.
                    let mut scaled = Gradients::zeros_like(&policy);
                    scaled.accumulate(&grads, 1.0 / steps as f32);
                    adam.step(&mut policy, &scaled);
                }
            }
        }
        Self { policy }
    }

    /// The learned policy network.
    pub fn policy(&self) -> &Mlp {
        &self.policy
    }
}

/// Replays an expert trajectory in canonical order (bytes-descending),
/// invoking `visit(per-device inputs, expert device)` per step, and
/// returns the number of steps.
fn replay(entry: &LogEntry, mut visit: impl FnMut(&[Vec<f32>], usize)) -> usize {
    let mut order: Vec<usize> = (0..entry.sharded_tables.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(entry.sharded_tables[i].memory_bytes()));
    let mut state = DeviceState::new(&entry.sharded_tables, entry.num_devices);
    for &i in &order {
        let table = &entry.sharded_tables[i];
        let inputs = state.inputs(table, entry.batch_size);
        let label = entry.device_of[i];
        visit(&inputs, label);
        state.place(table, label);
    }
    order.len()
}

/// Mutable device-load state shared by training replay and inference.
struct DeviceState {
    bytes: Vec<f64>,
    dims: Vec<f64>,
    lookups: Vec<f64>,
    per_dev_bytes: f64,
    per_dev_dim: f64,
    per_dev_lookup: f64,
}

impl DeviceState {
    fn new(tables: &[TableConfig], num_devices: usize) -> Self {
        let d = num_devices as f64;
        let total_bytes: f64 = tables.iter().map(|t| t.memory_bytes() as f64).sum();
        let total_dim: f64 = tables.iter().map(|t| f64::from(t.dim())).sum();
        let total_lookup: f64 = tables
            .iter()
            .map(|t| f64::from(t.dim()) * t.pooling_factor())
            .sum();
        Self {
            bytes: vec![0.0; num_devices],
            dims: vec![0.0; num_devices],
            lookups: vec![0.0; num_devices],
            per_dev_bytes: (total_bytes / d).max(1.0),
            per_dev_dim: (total_dim / d).max(1.0),
            per_dev_lookup: (total_lookup / d).max(1.0),
        }
    }

    fn inputs(&self, table: &TableConfig, batch_size: u32) -> Vec<Vec<f32>> {
        let tf = table_features(&table.profile(batch_size), batch_size);
        (0..self.bytes.len())
            .map(|g| {
                let mut x = tf.clone();
                x.push((self.bytes[g] / self.per_dev_bytes) as f32);
                x.push((self.dims[g] / self.per_dev_dim) as f32);
                x.push((self.lookups[g] / self.per_dev_lookup) as f32);
                x
            })
            .collect()
    }

    fn place(&mut self, table: &TableConfig, device: usize) {
        self.bytes[device] += table.memory_bytes() as f64;
        self.dims[device] += f64::from(table.dim());
        self.lookups[device] += f64::from(table.dim()) * table.pooling_factor();
    }
}

impl ShardingAlgorithm for ImitationSharder {
    fn name(&self) -> &str {
        "imitation"
    }

    fn shard(&self, task: &ShardingTask) -> Result<ShardingPlan, PlanError> {
        // Deterministic pre-split: halve any shard that exceeds half the
        // budget until everything is placeable (the imitation policy is
        // table-wise only; see module docs).
        let threshold = task.mem_budget_bytes() / 2;
        let mut split_plan: Vec<SplitStep> = Vec::new();
        let mut tables = task.tables().to_vec();
        while let Some(idx) = tables
            .iter()
            .position(|t| t.memory_bytes() > threshold && t.split_columns().is_some())
        {
            let (a, b) = tables[idx].split_columns().expect("checked splittable");
            split_plan.push(SplitStep::column(idx));
            tables[idx] = a;
            tables.push(b);
        }
        debug_assert_eq!(
            apply_split_plan(task.tables(), &split_plan).as_deref(),
            Ok(&tables[..])
        );

        let mut order: Vec<usize> = (0..tables.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(tables[i].memory_bytes()));
        let mut state = DeviceState::new(&tables, task.num_devices());
        let mut placed_bytes = vec![0u64; task.num_devices()];
        let mut device_of = vec![0usize; tables.len()];
        for &i in &order {
            let table = &tables[i];
            let inputs = state.inputs(table, task.batch_size());
            let scores = self.policy.forward(&Matrix::from_rows(&inputs));
            // Argmax over memory-feasible devices.
            let chosen = (0..task.num_devices())
                .filter(|&g| placed_bytes[g] + table.memory_bytes() <= task.mem_budget_bytes())
                .max_by(|&a, &b| {
                    scores
                        .get(a, 0)
                        .partial_cmp(&scores.get(b, 0))
                        .expect("finite scores")
                })
                .ok_or_else(|| PlanError::Infeasible {
                    reason: format!(
                        "imitation policy found no feasible device for {}",
                        table.id()
                    ),
                })?;
            state.place(table, chosen);
            placed_bytes[chosen] += table.memory_bytes();
            device_of[i] = chosen;
        }
        ShardingPlan::with_split_plan(split_plan, tables, device_of, task.num_devices())
    }
}

fn softmax(scores: &[f32]) -> Vec<f64> {
    let max = scores.iter().cloned().fold(f32::MIN, f32::max);
    let exps: Vec<f64> = scores.iter().map(|&s| f64::from(s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::DimGreedy;
    use nshard_data::{TableId, TablePool};

    fn tasks(n: usize, seed: u64) -> Vec<ShardingTask> {
        let pool = TablePool::synthetic_dlrm(80, 3);
        (0..n as u64)
            .map(|i| ShardingTask::sample(&pool, 2, 8..=16, 32, seed ^ i))
            .collect()
    }

    fn log_from_expert(tasks: &[ShardingTask]) -> SystemLog {
        // Use a deterministic "expert" (dimension-greedy) to build the log.
        let mut log = SystemLog::new();
        for t in tasks {
            let plan = DimGreedy.shard(t).unwrap();
            log.record(t, &plan);
        }
        log
    }

    #[test]
    fn records_and_counts() {
        let ts = tasks(3, 1);
        let log = log_from_expert(&ts);
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
    }

    #[test]
    fn fit_and_shard_produce_valid_plans() {
        let ts = tasks(6, 2);
        let sharder = ImitationSharder::fit(&log_from_expert(&ts), 15, 0);
        for t in &ts {
            let plan = sharder.shard(t).unwrap();
            assert!(plan.validate(t).is_ok());
        }
    }

    #[test]
    fn imitation_learns_balance_from_a_balancing_expert() {
        let train_tasks = tasks(12, 3);
        let sharder = ImitationSharder::fit(&log_from_expert(&train_tasks), 40, 1);
        // Held-out task: the policy should produce reasonably balanced
        // device dimensions, like its dim-greedy teacher.
        let held_out = &tasks(3, 999)[0];
        let plan = sharder.shard(held_out).unwrap();
        let dims = plan.device_dims();
        let max = dims.iter().cloned().fold(0.0, f64::max);
        let min = dims.iter().cloned().fold(f64::INFINITY, f64::min);
        let total: f64 = dims.iter().sum();
        assert!(
            (max - min) / total < 0.5,
            "imbalanced: {dims:?} (teacher balances dimensions)"
        );
    }

    #[test]
    fn presplits_oversized_tables() {
        let ts = tasks(4, 5);
        let sharder = ImitationSharder::fit(&log_from_expert(&ts), 10, 2);
        let huge = TableConfig::new(TableId(77), 128, 8 << 20, 10.0, 1.0); // 4 GB
        let small = TableConfig::new(TableId(78), 16, 1 << 16, 4.0, 1.0);
        let task = ShardingTask::new(vec![huge, small], 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536);
        let plan = sharder.shard(&task).unwrap();
        assert!(plan.num_column_splits() >= 1);
        assert!(plan.validate(&task).is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let ts = tasks(2, 7);
        let sharder = ImitationSharder::fit(&log_from_expert(&ts), 5, 3);
        let json = serde_json::to_string(&sharder).unwrap();
        let back: ImitationSharder = serde_json::from_str(&json).unwrap();
        assert_eq!(sharder, back);
    }

    #[test]
    #[should_panic(expected = "empty log")]
    fn empty_log_panics() {
        let _ = ImitationSharder::fit(&SystemLog::new(), 5, 0);
    }
}
