//! # nshard-baselines — every comparator of the paper's evaluation
//!
//! Implements the baseline sharding algorithms of Table 1 / Table 4
//! (Appendix E):
//!
//! * [`greedy`] — **Random** sharding and the four greedy heuristics
//!   (size-, dim-, lookup- and size-lookup-based). Faithful to the paper,
//!   these balance a heuristic cost *without* memory awareness or
//!   column-wise sharding, so they hit out-of-memory failures as table
//!   dimensions grow — the "-" cells of Table 1.
//! * [`rl`] — REINFORCE policy-gradient sharding agents standing in for
//!   **AutoShard** (balances learned computation costs) and **DreamShard**
//!   (balances computation + communication). These are simulations of the
//!   referenced systems: table-wise-only assignment with a stochastic
//!   policy, which reproduces their qualitative behaviour — competitive at
//!   small dimensions, unable to scale to large tables.
//! * [`imitation`] — **self-imitation learning** (Appendix H): distill a
//!   log of NeuroShard plans into a fast one-pass policy sharder.
//! * [`planner`] — a **TorchRec-like** partition planner: supports
//!   column-wise splitting (so it scales to the largest dimensions) but
//!   costs proposals with a *heuristic* (non-learned) cost function, which
//!   is why it trails NeuroShard everywhere.
//!
//! All algorithms implement [`ShardingAlgorithm`] from `nshard-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod greedy;
pub mod imitation;
pub mod planner;
pub mod rl;

pub use greedy::{DimGreedy, LookupGreedy, RandomSharding, SizeGreedy, SizeLookupGreedy};
pub use imitation::{ImitationSharder, SystemLog};
pub use nshard_core::ShardingAlgorithm;
pub use planner::TorchRecLikePlanner;
pub use rl::{RlSharder, RlVariant};

use nshard_core::{PlanError, ShardingPlan};
use nshard_data::ShardingTask;

/// Returns every Table 1 baseline (without NeuroShard), boxed, in the
/// paper's row order. RL baselines receive the given `seed`.
pub fn all_baselines(seed: u64) -> Vec<Box<dyn ShardingAlgorithm>> {
    vec![
        Box::new(RandomSharding::new(seed)),
        Box::new(SizeGreedy),
        Box::new(DimGreedy),
        Box::new(LookupGreedy),
        Box::new(SizeLookupGreedy),
        Box::new(RlSharder::new(RlVariant::AutoShardLike, seed)),
        Box::new(RlSharder::new(RlVariant::DreamShardLike, seed)),
        Box::new(TorchRecLikePlanner::default()),
    ]
}

/// Helper shared by the baselines: wrap a device assignment (aligned with
/// `task.tables()` order, no column-wise sharding) into a [`ShardingPlan`].
pub(crate) fn plan_from_assignment(
    task: &ShardingTask,
    device_of: Vec<usize>,
) -> Result<ShardingPlan, PlanError> {
    ShardingPlan::new(
        Vec::new(),
        task.tables().to_vec(),
        device_of,
        task.num_devices(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_data::TablePool;

    #[test]
    fn all_baselines_returns_the_table1_row_order() {
        let algos = all_baselines(7);
        let names: Vec<&str> = algos.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec![
                "random",
                "size_greedy",
                "dim_greedy",
                "lookup_greedy",
                "size_lookup_greedy",
                "autoshard_like",
                "dreamshard_like",
                "torchrec_like",
            ]
        );
    }

    #[test]
    fn all_baselines_are_usable_as_trait_objects() {
        let pool = TablePool::synthetic_dlrm(30, 1);
        let task = ShardingTask::sample(&pool, 2, 4..=6, 8, 3);
        for algo in all_baselines(1) {
            if algo.name().contains("like") && algo.name() != "torchrec_like" {
                continue; // RL agents are exercised (slowly) in their own tests
            }
            let plan = algo.shard(&task).unwrap();
            assert_eq!(plan.num_devices(), 2, "{}", algo.name());
        }
    }
}
