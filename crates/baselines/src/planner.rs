//! A TorchRec-like partition planner (Appendix E.3).
//!
//! TorchRec's planner enumerates per-table sharding options (including
//! column-wise splits), costs them with a built-in *heuristic* performance
//! model, and partitions shards across devices subject to memory. That
//! gives it the scalability of column-wise sharding — it is the only
//! baseline that survives every max-dimension column of Table 1 — but its
//! non-learned cost function leaves consistent performance on the table
//! relative to NeuroShard.
//!
//! This reproduction mirrors that structure: several global proposals
//! (different split depths × different balancing heuristics), each
//! partitioned greedily under the memory budget, scored by the heuristic
//! max-device cost, best proposal wins.

use nshard_core::{apply_column_plan, ColumnPlan, PlanError, ShardingAlgorithm, ShardingPlan};
use nshard_data::{ShardingTask, TableConfig};

/// The TorchRec-like planning baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct TorchRecLikePlanner {
    _private: (),
}

/// Balancing heuristics the planner tries per proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Heuristic {
    /// dim × pooling factor (embedding-lookup work proxy).
    Lookup,
    /// Storage bytes.
    Storage,
    /// dim only (communication proxy).
    Dim,
}

impl Heuristic {
    fn cost(self, t: &TableConfig) -> f64 {
        match self {
            Heuristic::Lookup => f64::from(t.dim()) * t.pooling_factor(),
            Heuristic::Storage => t.memory_bytes() as f64,
            Heuristic::Dim => f64::from(t.dim()),
        }
    }
}

impl TorchRecLikePlanner {
    /// Builds the column plan that splits every table whose byte size
    /// exceeds `threshold` until all shards fit (or can no longer split).
    fn split_until_fits(tables: &[TableConfig], threshold: u64) -> (ColumnPlan, Vec<TableConfig>) {
        let mut plan: ColumnPlan = Vec::new();
        let mut list = tables.to_vec();
        // Repeatedly split the first too-large splittable shard; bounded by
        // the total dimension budget so it always terminates.
        while let Some(idx) = list
            .iter()
            .position(|t| t.memory_bytes() > threshold && t.split_columns().is_some())
        {
            let (a, b) = list[idx].split_columns().expect("checked splittable");
            plan.push(idx);
            list[idx] = a;
            list.push(b);
        }
        (plan, list)
    }

    /// Memory-aware greedy partition of `shards` balancing `heuristic`.
    /// Returns `None` when some shard fits on no device.
    fn partition(
        shards: &[TableConfig],
        num_devices: usize,
        mem_budget: u64,
        heuristic: Heuristic,
    ) -> Option<(Vec<usize>, f64)> {
        let costs: Vec<f64> = shards.iter().map(|t| heuristic.cost(t)).collect();
        let mut order: Vec<usize> = (0..shards.len()).collect();
        order.sort_by(|&a, &b| costs[b].partial_cmp(&costs[a]).expect("finite costs"));

        let mut device_cost = vec![0.0f64; num_devices];
        let mut device_bytes = vec![0u64; num_devices];
        let mut device_of = vec![0usize; shards.len()];
        for &i in &order {
            let bytes = shards[i].memory_bytes();
            let g = (0..num_devices)
                .filter(|&g| device_bytes[g] + bytes <= mem_budget)
                .min_by(|&a, &b| {
                    device_cost[a]
                        .partial_cmp(&device_cost[b])
                        .expect("finite costs")
                })?;
            device_of[i] = g;
            device_cost[g] += costs[i];
            device_bytes[g] += bytes;
        }
        let max_cost = device_cost.iter().cloned().fold(0.0, f64::max);
        Some((device_of, max_cost))
    }
}

impl ShardingAlgorithm for TorchRecLikePlanner {
    fn name(&self) -> &str {
        "torchrec_like"
    }

    fn shard(&self, task: &ShardingTask) -> Result<ShardingPlan, PlanError> {
        let budget = task.mem_budget_bytes();
        // Proposal grid: split thresholds (as a fraction of the budget) ×
        // balancing heuristics. Smaller thresholds split more aggressively.
        let thresholds = [budget, budget / 2, budget / 4, budget / 8];
        let heuristics = [Heuristic::Lookup, Heuristic::Storage, Heuristic::Dim];

        let mut best: Option<(f64, ColumnPlan, Vec<TableConfig>, Vec<usize>)> = None;
        for &threshold in &thresholds {
            let (col_plan, shards) = Self::split_until_fits(task.tables(), threshold);
            for &h in &heuristics {
                let Some((device_of, max_cost)) =
                    Self::partition(&shards, task.num_devices(), budget, h)
                else {
                    continue;
                };
                // Normalize the heuristic score so proposals from different
                // heuristics are comparable: use the lookup heuristic as the
                // planner's global objective (TorchRec's perf estimate).
                let score: f64 = {
                    let mut per_dev = vec![0.0f64; task.num_devices()];
                    for (i, &d) in device_of.iter().enumerate() {
                        per_dev[d] += Heuristic::Lookup.cost(&shards[i]);
                    }
                    let _ = max_cost;
                    per_dev.iter().cloned().fold(0.0, f64::max)
                };
                if best.as_ref().is_none_or(|(s, ..)| score < *s) {
                    best = Some((score, col_plan.clone(), shards.clone(), device_of));
                }
            }
        }

        let (_, col_plan, shards, device_of) = best.ok_or_else(|| PlanError::Infeasible {
            reason: "no proposal fits the memory budget".into(),
        })?;
        debug_assert_eq!(
            apply_column_plan(task.tables(), &col_plan).as_deref(),
            Ok(&shards[..]),
        );
        ShardingPlan::new(col_plan, shards, device_of, task.num_devices())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_data::{TableId, TablePool};

    fn t(id: u32, dim: u32, rows: u64) -> TableConfig {
        TableConfig::new(TableId(id), dim, rows, 8.0, 1.0)
    }

    #[test]
    fn plans_simple_tasks_without_splits() {
        let pool = TablePool::synthetic_dlrm(50, 3);
        let task = ShardingTask::sample(&pool, 4, 10..=20, 16, 5);
        let plan = TorchRecLikePlanner::default().shard(&task).unwrap();
        assert!(plan.validate(&task).is_ok());
    }

    #[test]
    fn splits_oversized_tables() {
        // 16 GB table, 4 GB budget: needs at least 4-way split.
        let huge = t(0, 128, 32 << 20);
        let task = ShardingTask::new(
            vec![huge, t(1, 16, 1 << 16)],
            8,
            nshard_sim::DEFAULT_MEM_BYTES,
            65_536,
        );
        let plan = TorchRecLikePlanner::default().shard(&task).unwrap();
        assert!(plan.num_column_splits() >= 3);
        assert!(plan.validate(&task).is_ok());
    }

    #[test]
    fn scales_to_max_dimension_128() {
        let pool = TablePool::synthetic_dlrm(100, 9);
        for seed in 0..5 {
            let task = ShardingTask::sample(&pool, 4, 10..=60, 128, seed);
            let plan = TorchRecLikePlanner::default().shard(&task).unwrap();
            assert!(plan.validate(&task).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn reports_infeasible_when_nothing_fits() {
        // Unsplittable (dim 4) table larger than the budget.
        let impossible = t(0, 4, 1 << 30); // 16 GB at dim 4
        let task = ShardingTask::new(vec![impossible], 2, 1 << 20, 65_536);
        assert!(matches!(
            TorchRecLikePlanner::default().shard(&task),
            Err(PlanError::Infeasible { .. })
        ));
    }

    #[test]
    fn split_until_fits_terminates_and_covers() {
        let tables = vec![t(0, 128, 1 << 22)]; // 2 GB
        let (plan, shards) = TorchRecLikePlanner::split_until_fits(&tables, 1 << 28); // 256 MB
        assert!(!plan.is_empty());
        assert!(shards.iter().all(|s| s.memory_bytes() <= 1 << 28));
        // Total memory conserved.
        let total: u64 = shards.iter().map(TableConfig::memory_bytes).sum();
        assert_eq!(total, tables[0].memory_bytes());
        // The recorded plan reproduces the shards.
        assert_eq!(apply_column_plan(&tables, &plan).unwrap(), shards);
    }
}
