//! Reinforcement-learning baselines: AutoShard-like and DreamShard-like
//! REINFORCE agents (Appendix E.2).
//!
//! The original systems train a stochastic policy network per sharding
//! task: AutoShard balances (hardware-measured) computation costs;
//! DreamShard additionally balances communication via an estimated MDP.
//! This module reproduces their decision structure — **table-wise-only**
//! sequential device assignment by a learned softmax policy — with rewards
//! queried from the ground-truth simulator, exactly as AutoShard queries
//! real GPUs during training.
//!
//! Faithful to the paper's analysis, the agents have the weaknesses that
//! motivate NeuroShard (§1): they cannot split columns, so a single
//! oversized table sinks them; their stochastic policies are
//! seed-sensitive; and the AutoShard variant ignores memory entirely while
//! the DreamShard variant only discourages overflow through a reward
//! penalty, so both eventually out-of-memory as dimensions grow.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nshard_core::{PlanError, ShardingAlgorithm, ShardingPlan};
use nshard_cost::table_features;
use nshard_data::ShardingTask;
use nshard_nn::{Adam, Gradients, Matrix, Mlp};
use nshard_sim::{Cluster, GpuSpec, TableProfile};

use crate::plan_from_assignment;

/// Which published RL system the agent emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RlVariant {
    /// AutoShard (Zha et al., KDD 2022): reward is the computation balance
    /// (min device compute / max device compute). Memory-oblivious.
    AutoShardLike,
    /// DreamShard (Zha et al., NeurIPS 2022): reward is the negative max
    /// total embedding cost (computation + communication), with a penalty
    /// for memory overflow.
    DreamShardLike,
}

/// Number of device-state features appended to the table features.
const DEVICE_FEATURES: usize = 3;

/// A REINFORCE sharding agent trained per task.
#[derive(Debug, Clone)]
pub struct RlSharder {
    variant: RlVariant,
    seed: u64,
    episodes: usize,
    batch_episodes: usize,
    learning_rate: f32,
    spec: GpuSpec,
}

impl RlSharder {
    /// Creates an agent of the given variant with its training seed.
    pub fn new(variant: RlVariant, seed: u64) -> Self {
        Self {
            variant,
            seed,
            episodes: 96,
            batch_episodes: 8,
            learning_rate: 3e-3,
            spec: GpuSpec::rtx_2080_ti(),
        }
    }

    /// Sets the number of training episodes (builder-style).
    pub fn with_episodes(mut self, episodes: usize) -> Self {
        self.episodes = episodes.max(1);
        self
    }

    /// Sets the hardware spec used for reward queries.
    pub fn with_spec(mut self, spec: GpuSpec) -> Self {
        self.spec = spec;
        self
    }

    /// The emulated variant.
    pub fn variant(&self) -> RlVariant {
        self.variant
    }

    /// Rolls out one episode; `explore` controls sampling vs. argmax.
    /// Returns the assignment and the per-step (input, action, probs).
    #[allow(clippy::too_many_arguments)]
    fn rollout(
        &self,
        policy: &Mlp,
        profiles: &[TableProfile],
        order: &[usize],
        num_devices: usize,
        task: &ShardingTask,
        rng: &mut StdRng,
        explore: bool,
    ) -> (Vec<usize>, Vec<Step>) {
        let total_bytes: f64 = profiles.iter().map(|p| p.memory_bytes() as f64).sum();
        let total_dim: f64 = profiles.iter().map(|p| f64::from(p.dim())).sum();
        let per_dev_bytes = (total_bytes / num_devices as f64).max(1.0);
        let per_dev_dim = (total_dim / num_devices as f64).max(1.0);

        let mut dev_bytes = vec![0.0f64; num_devices];
        let mut dev_dim = vec![0.0f64; num_devices];
        let mut dev_lookup = vec![0.0f64; num_devices];
        let total_lookup: f64 = profiles
            .iter()
            .map(|p| f64::from(p.dim()) * p.pooling_factor())
            .sum();
        let per_dev_lookup = (total_lookup / num_devices as f64).max(1.0);

        let mut device_of = vec![0usize; profiles.len()];
        let mut steps = Vec::with_capacity(order.len());
        for &i in order {
            let p = &profiles[i];
            let tf = table_features(p, task.batch_size());
            // Score each device.
            let rows: Vec<Vec<f32>> = (0..num_devices)
                .map(|g| {
                    let mut x = tf.clone();
                    x.push((dev_bytes[g] / per_dev_bytes) as f32);
                    x.push((dev_dim[g] / per_dev_dim) as f32);
                    x.push((dev_lookup[g] / per_dev_lookup) as f32);
                    x
                })
                .collect();
            let x = Matrix::from_rows(&rows);
            let scores = policy.forward(&x);
            let probs = softmax(scores.as_slice());
            let action = if explore {
                sample_categorical(&probs, rng)
            } else {
                argmax(&probs)
            };
            steps.push(Step {
                inputs: rows,
                action,
                probs: probs.clone(),
            });
            device_of[i] = action;
            dev_bytes[action] += p.memory_bytes() as f64;
            dev_dim[action] += f64::from(p.dim());
            dev_lookup[action] += f64::from(p.dim()) * p.pooling_factor();
        }
        (device_of, steps)
    }

    /// Reward of an assignment under the variant's objective. Higher is
    /// better.
    fn reward(&self, task: &ShardingTask, profiles: &[TableProfile], device_of: &[usize]) -> f64 {
        let mut assignment: Vec<Vec<TableProfile>> = vec![Vec::new(); task.num_devices()];
        for (i, &d) in device_of.iter().enumerate() {
            assignment[d].push(profiles[i]);
        }
        match self.variant {
            RlVariant::AutoShardLike => {
                // Computation balance: min/max fused-kernel cost.
                let kernel = self.spec.kernel();
                let costs: Vec<f64> = assignment
                    .iter()
                    .map(|t| kernel.multi_cost_ms(t, task.batch_size()))
                    .collect();
                let max = costs.iter().cloned().fold(0.0, f64::max);
                let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
                if max == 0.0 {
                    1.0
                } else {
                    min / max
                }
            }
            RlVariant::DreamShardLike => {
                // Negative max embedding cost, normalized, with a memory
                // penalty so the policy learns to avoid overflow.
                let cluster = Cluster::new(
                    self.spec.with_mem_budget(u64::MAX),
                    task.num_devices(),
                    task.batch_size(),
                );
                let costs = cluster
                    .evaluate_exact(&assignment)
                    .expect("memory disabled for reward query");
                let mut r = -costs.max_total_ms() / 10.0;
                let budget = task.mem_budget_bytes();
                for tables in &assignment {
                    let bytes: u64 = tables.iter().map(TableProfile::memory_bytes).sum();
                    if bytes > budget {
                        r -= 5.0 * (bytes - budget) as f64 / budget as f64;
                    }
                }
                r
            }
        }
    }
}

struct Step {
    inputs: Vec<Vec<f32>>,
    action: usize,
    probs: Vec<f64>,
}

impl ShardingAlgorithm for RlSharder {
    fn name(&self) -> &str {
        match self.variant {
            RlVariant::AutoShardLike => "autoshard_like",
            RlVariant::DreamShardLike => "dreamshard_like",
        }
    }

    fn shard(&self, task: &ShardingTask) -> Result<ShardingPlan, PlanError> {
        let profiles: Vec<TableProfile> = task.profiles();
        // Assign in descending size order (both systems sort tables first).
        let mut order: Vec<usize> = (0..profiles.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(profiles[i].memory_bytes()));

        let input_dim = nshard_cost::TABLE_FEATURE_DIM + DEVICE_FEATURES;
        let mut policy = Mlp::new(input_dim, &[32, 16], 1, self.seed);
        let mut adam = Adam::new(&policy, self.learning_rate);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xD0D0);

        let mut baseline = 0.0f64;
        let mut episodes_done = 0usize;
        // Like the original systems, keep the best assignment seen across
        // all sampled episodes; the final answer is the better of this and
        // the trained policy's deterministic rollout.
        let mut best_sampled: Option<(f64, Vec<usize>)> = None;
        while episodes_done < self.episodes {
            let mut grads = Gradients::zeros_like(&policy);
            let batch = self.batch_episodes.min(self.episodes - episodes_done);
            for _ in 0..batch {
                let (device_of, steps) = self.rollout(
                    &policy,
                    &profiles,
                    &order,
                    task.num_devices(),
                    task,
                    &mut rng,
                    true,
                );
                let reward = self.reward(task, &profiles, &device_of);
                if best_sampled.as_ref().is_none_or(|(r, _)| reward > *r) {
                    best_sampled = Some((reward, device_of.clone()));
                }
                let advantage = reward - baseline;
                baseline = 0.9 * baseline + 0.1 * reward;
                // REINFORCE: accumulate -(advantage) * ∇ log π(a).
                for step in &steps {
                    let x = Matrix::from_rows(&step.inputs);
                    let (_, cache) = policy.forward_cached(&x);
                    // d(-logp)/d(score_g) = p_g - 1[g == a]
                    let mut dy = Matrix::zeros(step.inputs.len(), 1);
                    for g in 0..step.inputs.len() {
                        let indicator = if g == step.action { 1.0 } else { 0.0 };
                        dy.set(g, 0, (step.probs[g] as f32 - indicator) * advantage as f32);
                    }
                    let (_, g) = policy.backward(&cache, &dy);
                    grads.accumulate(&g, 1.0 / batch as f32);
                }
            }
            adam.step(&mut policy, &grads);
            episodes_done += batch;
        }

        // Final deterministic rollout, compared against the best sampled
        // episode.
        let (greedy_of, _) = self.rollout(
            &policy,
            &profiles,
            &order,
            task.num_devices(),
            task,
            &mut rng,
            false,
        );
        let greedy_reward = self.reward(task, &profiles, &greedy_of);
        let device_of = match best_sampled {
            Some((r, sampled)) if r > greedy_reward => sampled,
            _ => greedy_of,
        };
        plan_from_assignment(task, device_of)
    }
}

fn softmax(scores: &[f32]) -> Vec<f64> {
    let max = scores.iter().cloned().fold(f32::MIN, f32::max);
    let exps: Vec<f64> = scores.iter().map(|&s| f64::from(s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

fn sample_categorical(probs: &[f64], rng: &mut StdRng) -> usize {
    let u: f64 = rng.random();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probs.len() - 1
}

fn argmax(probs: &[f64]) -> usize {
    probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
        .map(|(i, _)| i)
        .expect("non-empty probs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_data::{TableConfig, TableId, TablePool};

    fn task(d: usize) -> ShardingTask {
        let pool = TablePool::synthetic_dlrm(50, 3);
        ShardingTask::sample(&pool, d, 8..=14, 16, 5)
    }

    #[test]
    fn produces_full_assignments() {
        let t = task(2);
        for variant in [RlVariant::AutoShardLike, RlVariant::DreamShardLike] {
            let agent = RlSharder::new(variant, 1).with_episodes(10);
            let plan = agent.shard(&t).unwrap();
            assert_eq!(plan.sharded_tables().len(), t.num_tables());
            assert_eq!(plan.num_column_splits(), 0); // table-wise only
        }
    }

    #[test]
    fn is_seed_sensitive() {
        // The paper's instability complaint: different seeds, different
        // plans.
        let t = task(2);
        let a = RlSharder::new(RlVariant::AutoShardLike, 1)
            .with_episodes(12)
            .shard(&t)
            .unwrap();
        let b = RlSharder::new(RlVariant::AutoShardLike, 99)
            .with_episodes(12)
            .shard(&t)
            .unwrap();
        // (Equality would be astronomically unlikely across 8+ tables.)
        assert_ne!(a.device_of(), b.device_of());
    }

    #[test]
    fn training_improves_over_random_policy() {
        let t = task(4);
        let untrained = RlSharder::new(RlVariant::AutoShardLike, 3).with_episodes(1);
        let trained = RlSharder::new(RlVariant::AutoShardLike, 3).with_episodes(64);
        let profiles = t.profiles();
        let reward =
            |plan: &ShardingPlan, agent: &RlSharder| agent.reward(&t, &profiles, plan.device_of());
        let r_untrained = reward(&untrained.shard(&t).unwrap(), &untrained);
        let r_trained = reward(&trained.shard(&t).unwrap(), &trained);
        assert!(
            r_trained >= r_untrained - 0.05,
            "training regressed: {r_untrained} -> {r_trained}"
        );
    }

    #[test]
    fn cannot_handle_oversized_tables() {
        // A 16 GB table cannot fit anywhere; RL produces a plan anyway and
        // validation fails — the paper's "-" outcome.
        let huge = TableConfig::new(TableId(0), 128, 32 << 20, 8.0, 1.0);
        let t = ShardingTask::new(vec![huge], 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536);
        let agent = RlSharder::new(RlVariant::DreamShardLike, 0).with_episodes(4);
        let plan = agent.shard(&t).unwrap();
        assert!(plan.validate(&t).is_err());
    }

    #[test]
    fn names_match_variants() {
        assert_eq!(
            RlSharder::new(RlVariant::AutoShardLike, 0).name(),
            "autoshard_like"
        );
        assert_eq!(
            RlSharder::new(RlVariant::DreamShardLike, 0).name(),
            "dreamshard_like"
        );
    }
}
