//! # nshard-learn — continual learning for the cost models
//!
//! The paper pre-trains its neural cost models once and searches forever.
//! Production drifts: the workload the models were pre-trained on slowly
//! stops resembling the workload being served, and every prediction
//! inherits the gap. This crate closes the *training* loop the way
//! `nshard-online` closes the *planning* loop:
//!
//! * [`buffer`] — a bounded [`ObservationBuffer`] of
//!   `(model input, predicted, observed)` triples with **error-weighted
//!   reservoir sampling**: samples the current models mispredict worst
//!   are kept preferentially, and a deterministic held-back validation
//!   slice never trains. Bit-deterministic per `(seed, insert sequence)`
//!   at any thread count.
//! * [`finetune`] — a conservative [`FineTuner`]: low learning rate,
//!   exact (bitwise) frozen-encoder option for the DeepSets compute
//!   model, frozen input layers for the comm MLPs — built on the same
//!   data-parallel trainer as pre-training.
//! * [`lifecycle`] — a versioned [`ModelLifecycle`] over the serve
//!   crate's checksum-framed `ModelStore`: every candidate is
//!   shadow-evaluated (held-back validation MSE + train→search
//!   conformance probe) and atomically **promoted or rolled back**; a
//!   rejected candidate leaves the active checkpoint byte-identical.
//! * [`continual`] — the [`ContinualLearner`] tying it together as an
//!   `nshard_online::EpochHook`: observe every epoch, fine-tune when the
//!   drift detector fires, hot-swap the serving models only on
//!   promotion. It also ingests wire observations drained from a serve
//!   daemon's `POST /v1/observations` buffer.
//!
//! Everything is bit-deterministic per seed at any thread count — the
//! same contract as the rest of the workspace, extended to the learning
//! loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod continual;
pub mod finetune;
pub mod lifecycle;

pub use buffer::{BufferConfig, LearnDatasets, Observation, ObservationBuffer, ObservationKind};
pub use continual::{ContinualConfig, ContinualLearner};
pub use finetune::{FineTuneSettings, FineTuner};
pub use lifecycle::{LifecycleConfig, ModelLifecycle, PromotionRecord, ACTIVE_NAME};
