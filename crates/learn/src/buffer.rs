//! Ground-truth observation buffering with error-prioritized sampling.
//!
//! Every observation pairs a cost-model input with what the model
//! predicted and what the deployment actually measured. The buffer cannot
//! keep everything — a serving tier produces observations far faster than
//! fine-tuning can consume them — so it keeps a bounded **weighted
//! reservoir** biased toward the samples the current models get most
//! wrong: the keep-probability of a sample scales with its absolute
//! prediction error (the A-Res scheme of Efraimidis & Spirakis, key
//! `u^(1/w)`), so a drifted regime floods the reservoir precisely because
//! the stale models mispredict it.
//!
//! A deterministic slice of the stream (1 in [`BufferConfig::validation_stride`],
//! routed by a seeded hash of the insert index, sampled **uniformly**) is
//! held back from training entirely — the shadow-evaluation set the model
//! lifecycle scores candidates against. Routing by insert index (not by
//! content or error) keeps the validation slice unbiased by the very
//! models it judges.
//!
//! # Determinism
//!
//! Eviction is a pure function of `(seed, insert sequence)`: every random
//! decision derives from a splitmix64 hash of the seed and the
//! observation's insert index, and ties in the eviction scan break on the
//! insert index. No thread count, clock or iteration-order effect can
//! change the retained set — the property the `learn_loop` proptest pins
//! across `NSHARD_THREADS` settings.

use serde::{Deserialize, Serialize};

use nshard_cost::{ComputeDataset, ComputeSample};
use nshard_nn::{Dataset, Matrix};

/// Which cost model an observation feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObservationKind {
    /// Per-device fused-kernel computation cost (DeepSets model input:
    /// one feature row per table on the device).
    Compute,
    /// Forward all-to-all cost (one flat comm feature row).
    CommForward,
    /// Backward all-to-all cost (one flat comm feature row).
    CommBackward,
}

impl ObservationKind {
    /// The wire label used by `POST /v1/observations`.
    pub fn label(self) -> &'static str {
        match self {
            ObservationKind::Compute => "compute",
            ObservationKind::CommForward => "comm_forward",
            ObservationKind::CommBackward => "comm_backward",
        }
    }

    /// Parses a wire label; `None` for unknown kinds (ignored, so old
    /// daemons interoperate with newer reporters).
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "compute" => Some(ObservationKind::Compute),
            "comm_forward" => Some(ObservationKind::CommForward),
            "comm_backward" => Some(ObservationKind::CommBackward),
            _ => None,
        }
    }
}

/// One `(model input, predicted, observed)` triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Which cost model the sample feeds.
    pub kind: ObservationKind,
    /// Model input rows: per-table rows for [`ObservationKind::Compute`],
    /// a single wrapped row for the comm kinds.
    pub features: Vec<Vec<f32>>,
    /// What the serving model predicted, ms.
    pub predicted_ms: f64,
    /// What was actually measured, ms.
    pub observed_ms: f64,
}

impl Observation {
    /// The sampling weight: absolute prediction error, floored so
    /// perfectly-predicted samples still have a nonzero keep chance.
    pub fn weight(&self) -> f64 {
        (self.predicted_ms - self.observed_ms).abs().max(1e-6)
    }
}

/// Buffer sizing and routing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferConfig {
    /// Training-reservoir capacity (error-weighted retention).
    pub capacity: usize,
    /// Held-back validation-reservoir capacity (uniform retention).
    pub validation_capacity: usize,
    /// One in this many observations routes to the validation slice.
    pub validation_stride: u64,
    /// Seed for every sampling decision.
    pub seed: u64,
}

impl Default for BufferConfig {
    fn default() -> Self {
        Self {
            capacity: 2_048,
            validation_capacity: 256,
            validation_stride: 8,
            seed: 0,
        }
    }
}

/// splitmix64: the workspace's standard cheap seeded hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from a hash (53-bit mantissa path).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Salt separating validation routing from reservoir-key derivation.
const VALIDATION_SALT: u64 = 0x5eed_feed_dead_beef;

/// A retained observation with its reservoir key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Entry {
    /// A-Res key `u^(1/w)`; larger keys survive eviction.
    key: f64,
    /// Global insert index — the deterministic tie-breaker and the
    /// dataset-ordering key.
    index: u64,
    observation: Observation,
}

/// The bounded, seeded, error-prioritized observation buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservationBuffer {
    config: BufferConfig,
    inserted: u64,
    train: Vec<Entry>,
    validation: Vec<Entry>,
}

/// Per-model training (or validation) datasets drained from the buffer.
/// Comm datasets are `None` when no observation of that kind survived —
/// the fine-tuner then leaves that model untouched.
#[derive(Debug, Clone)]
pub struct LearnDatasets {
    /// Per-device computation samples.
    pub compute: ComputeDataset,
    /// Forward all-to-all regression rows.
    pub comm_fwd: Option<Dataset>,
    /// Backward all-to-all regression rows.
    pub comm_bwd: Option<Dataset>,
}

impl LearnDatasets {
    /// Total samples across all three datasets.
    pub fn len(&self) -> usize {
        let comm = |d: &Option<Dataset>| d.as_ref().map_or(0, Dataset::len);
        self.compute.len() + comm(&self.comm_fwd) + comm(&self.comm_bwd)
    }

    /// `true` when no model has any data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ObservationBuffer {
    /// An empty buffer.
    pub fn new(config: BufferConfig) -> Self {
        Self {
            config,
            inserted: 0,
            train: Vec::with_capacity(config.capacity.min(4_096)),
            validation: Vec::with_capacity(config.validation_capacity.min(4_096)),
        }
    }

    /// The sizing/seed configuration.
    pub fn config(&self) -> &BufferConfig {
        &self.config
    }

    /// Observations currently retained for training.
    pub fn len(&self) -> usize {
        self.train.len()
    }

    /// `true` when the training reservoir is empty.
    pub fn is_empty(&self) -> bool {
        self.train.is_empty()
    }

    /// Observations retained in the held-back validation slice.
    pub fn validation_len(&self) -> usize {
        self.validation.len()
    }

    /// Total observations ever offered to the buffer.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Offers one observation. Routing (train vs validation) and
    /// retention depend only on `(seed, insert index, weight)`.
    pub fn insert(&mut self, observation: Observation) {
        let index = self.inserted;
        self.inserted += 1;
        let stride = self.config.validation_stride.max(1);
        let to_validation =
            mix(self.config.seed ^ VALIDATION_SALT ^ mix(index)).is_multiple_of(stride);
        if to_validation {
            // Uniform retention: weight 1 for every sample, so the slice
            // estimates the true observation distribution.
            let key = unit(mix(self.config.seed ^ mix(index ^ 0x0bad_cafe)));
            Self::reservoir_insert(
                &mut self.validation,
                self.config.validation_capacity,
                Entry {
                    key,
                    index,
                    observation,
                },
            );
        } else {
            // Error-weighted retention: key = u^(1/w) (A-Res), so high
            // |predicted − observed| samples dominate under pressure.
            let u = unit(mix(self.config.seed ^ mix(index)));
            let key = u.powf(1.0 / observation.weight());
            Self::reservoir_insert(
                &mut self.train,
                self.config.capacity,
                Entry {
                    key,
                    index,
                    observation,
                },
            );
        }
    }

    /// Offers a batch in order.
    pub fn extend(&mut self, observations: impl IntoIterator<Item = Observation>) {
        for observation in observations {
            self.insert(observation);
        }
    }

    /// Keeps the top-`capacity` entries by `(key, index)`: scan for the
    /// minimum and replace it when the newcomer's key is larger. O(cap)
    /// per insert — capacities here are thousands, and the scan's
    /// determinism (index tie-break) is worth more than a heap.
    fn reservoir_insert(entries: &mut Vec<Entry>, capacity: usize, entry: Entry) {
        if capacity == 0 {
            return;
        }
        if entries.len() < capacity {
            entries.push(entry);
            return;
        }
        let mut min = 0usize;
        for i in 1..entries.len() {
            let a = (entries[i].key, entries[i].index);
            let b = (entries[min].key, entries[min].index);
            if a < b {
                min = i;
            }
        }
        if (entry.key, entry.index) > (entries[min].key, entries[min].index) {
            entries[min] = entry;
        }
    }

    /// The retained training observations in insert order.
    pub fn training_observations(&self) -> Vec<&Observation> {
        Self::ordered(&self.train)
    }

    /// The held-back validation observations in insert order.
    pub fn validation_observations(&self) -> Vec<&Observation> {
        Self::ordered(&self.validation)
    }

    fn ordered(entries: &[Entry]) -> Vec<&Observation> {
        let mut refs: Vec<&Entry> = entries.iter().collect();
        refs.sort_by_key(|e| e.index);
        refs.into_iter().map(|e| &e.observation).collect()
    }

    /// Builds per-model training datasets from the retained samples.
    pub fn training_data(&self) -> LearnDatasets {
        Self::datasets(&Self::ordered(&self.train))
    }

    /// Builds per-model validation datasets from the held-back slice.
    pub fn validation_data(&self) -> LearnDatasets {
        Self::datasets(&Self::ordered(&self.validation))
    }

    fn datasets(observations: &[&Observation]) -> LearnDatasets {
        let mut compute = ComputeDataset::default();
        let mut fwd_rows: Vec<Vec<f32>> = Vec::new();
        let mut fwd_y: Vec<f32> = Vec::new();
        let mut bwd_rows: Vec<Vec<f32>> = Vec::new();
        let mut bwd_y: Vec<f32> = Vec::new();
        for obs in observations {
            match obs.kind {
                ObservationKind::Compute => compute.samples.push(ComputeSample {
                    tables: obs.features.clone(),
                    cost_ms: obs.observed_ms as f32,
                }),
                ObservationKind::CommForward => {
                    if let Some(row) = obs.features.first() {
                        fwd_rows.push(row.clone());
                        fwd_y.push(obs.observed_ms as f32);
                    }
                }
                ObservationKind::CommBackward => {
                    if let Some(row) = obs.features.first() {
                        bwd_rows.push(row.clone());
                        bwd_y.push(obs.observed_ms as f32);
                    }
                }
            }
        }
        let to_dataset = |rows: Vec<Vec<f32>>, y: Vec<f32>| {
            if rows.is_empty() {
                return None;
            }
            let x = Matrix::from_rows(rows);
            let y = Matrix::from_rows(y.into_iter().map(|v| vec![v]));
            Dataset::new(x, y)
        };
        LearnDatasets {
            compute,
            comm_fwd: to_dataset(fwd_rows, fwd_y),
            comm_bwd: to_dataset(bwd_rows, bwd_y),
        }
    }

    /// Canonical byte serialization — the artifact the cross-thread-count
    /// byte-identity tests compare.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_string(self).unwrap_or_default().into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(kind: ObservationKind, v: f32, predicted: f64, observed: f64) -> Observation {
        Observation {
            kind,
            features: vec![vec![v; 4]],
            predicted_ms: predicted,
            observed_ms: observed,
        }
    }

    #[test]
    fn buffer_is_a_pure_function_of_seed_and_sequence() {
        let config = BufferConfig {
            capacity: 16,
            validation_capacity: 8,
            ..BufferConfig::default()
        };
        let mut a = ObservationBuffer::new(config);
        let mut b = ObservationBuffer::new(config);
        for i in 0..500u32 {
            let o = obs(
                ObservationKind::Compute,
                i as f32,
                f64::from(i),
                f64::from(i) * 1.1,
            );
            a.insert(o.clone());
            b.insert(o);
        }
        assert_eq!(a.to_bytes(), b.to_bytes());
        assert_eq!(a.len(), 16);
        assert!(a.validation_len() <= 8);
    }

    #[test]
    fn high_error_samples_dominate_the_reservoir() {
        let mut buffer = ObservationBuffer::new(BufferConfig {
            capacity: 32,
            validation_capacity: 0,
            validation_stride: u64::MAX, // everything trains
            seed: 7,
        });
        // 500 well-predicted samples and 50 badly-mispredicted ones.
        for i in 0..500u32 {
            buffer.insert(obs(ObservationKind::Compute, i as f32, 10.0, 10.001));
        }
        for i in 0..50u32 {
            buffer.insert(obs(ObservationKind::Compute, i as f32, 10.0, 30.0));
        }
        let kept_bad = buffer
            .training_observations()
            .iter()
            .filter(|o| o.observed_ms > 20.0)
            .count();
        assert!(
            kept_bad > buffer.len() * 3 / 4,
            "only {kept_bad}/{} retained samples are high-error",
            buffer.len()
        );
    }

    #[test]
    fn validation_slice_is_disjoint_and_uniform() {
        let mut buffer = ObservationBuffer::new(BufferConfig {
            capacity: 64,
            validation_capacity: 64,
            validation_stride: 4,
            seed: 3,
        });
        for i in 0..400u32 {
            buffer.insert(obs(ObservationKind::Compute, i as f32, 1.0, 2.0));
        }
        // Roughly 1/4 routed to validation (uniform hash routing).
        let routed = buffer.validation_len();
        assert!(
            (40..=64).contains(&routed),
            "validation got {routed} of 400 at stride 4"
        );
        assert_eq!(buffer.len(), 64);
    }

    #[test]
    fn datasets_split_by_kind() {
        let mut buffer = ObservationBuffer::new(BufferConfig {
            validation_stride: u64::MAX,
            ..BufferConfig::default()
        });
        buffer.insert(obs(ObservationKind::Compute, 1.0, 1.0, 2.0));
        buffer.insert(obs(ObservationKind::CommForward, 2.0, 1.0, 2.0));
        buffer.insert(obs(ObservationKind::CommBackward, 3.0, 1.0, 2.0));
        buffer.insert(obs(ObservationKind::CommForward, 4.0, 1.0, 2.0));
        let data = buffer.training_data();
        assert_eq!(data.compute.len(), 1);
        assert_eq!(data.comm_fwd.as_ref().map(Dataset::len), Some(2));
        assert_eq!(data.comm_bwd.as_ref().map(Dataset::len), Some(1));
        assert_eq!(data.len(), 4);
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in [
            ObservationKind::Compute,
            ObservationKind::CommForward,
            ObservationKind::CommBackward,
        ] {
            assert_eq!(ObservationKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(ObservationKind::from_label("nope"), None);
    }
}
