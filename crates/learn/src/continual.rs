//! The closed continual-learning loop: observe → buffer → fine-tune →
//! shadow-evaluate → promote or roll back.
//!
//! [`ContinualLearner`] implements the online controller's
//! [`EpochHook`]: every epoch it converts the controller's
//! `(estimated, ground-truth)` pair into per-model observations and, when
//! the drift detector fires (and enough observations accumulated and the
//! cooldown elapsed), fine-tunes the incumbent, runs the candidate
//! through the [`ModelLifecycle`] shadow evaluation, and — only on
//! promotion — asks the controller to hot-swap the serving models.
//!
//! The same learner also ingests wire observations drained from a serve
//! daemon (`Service::take_observations`), so one loop can learn from both
//! the epoch simulator and live traffic.

use nshard_cost::{comm_features, table_features, CostModelBundle};
use nshard_online::{EpochHook, EpochObservation, HookAction};
use nshard_serve::{ObservationWire, StoreError};
use nshard_sim::{Cluster, DeviceCost};

use crate::buffer::{BufferConfig, Observation, ObservationBuffer, ObservationKind};
use crate::finetune::{FineTuneSettings, FineTuner};
use crate::lifecycle::{LifecycleConfig, ModelLifecycle, PromotionRecord};

/// Knobs of the continual-learning loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinualConfig {
    /// Observation-buffer sizing and sampling seed.
    pub buffer: BufferConfig,
    /// Fine-tuning hyperparameters.
    pub settings: FineTuneSettings,
    /// Shadow-evaluation thresholds.
    pub lifecycle: LifecycleConfig,
    /// Fine-tuning is only attempted once the training reservoir holds
    /// at least this many observations.
    pub min_observations: usize,
    /// Epochs that must pass between fine-tuning attempts — one drifted
    /// epoch must not trigger a thrashing retrain storm.
    pub cooldown_epochs: u64,
    /// Seed mixed into every fine-tuning run.
    pub seed: u64,
}

impl Default for ContinualConfig {
    fn default() -> Self {
        Self {
            buffer: BufferConfig::default(),
            settings: FineTuneSettings::default(),
            lifecycle: LifecycleConfig::default(),
            min_observations: 64,
            cooldown_epochs: 5,
            seed: 0,
        }
    }
}

impl ContinualConfig {
    /// A reduced configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        Self {
            settings: FineTuneSettings::smoke(),
            min_observations: 16,
            cooldown_epochs: 2,
            ..Self::default()
        }
    }
}

/// splitmix64 (same mixer as the buffer's — local copy keeps the crate
/// graph acyclic).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The closed-loop learner: buffers ground truth, fine-tunes on drift,
/// and versions every promotion decision through a [`ModelLifecycle`].
pub struct ContinualLearner {
    config: ContinualConfig,
    buffer: ObservationBuffer,
    lifecycle: ModelLifecycle,
    incumbent: CostModelBundle,
    last_attempt_epoch: Option<u64>,
    records: Vec<PromotionRecord>,
}

impl ContinualLearner {
    /// Builds the learner around the serving incumbent; `store_dir` roots
    /// the versioned checkpoint store.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the checkpoint store cannot be created.
    pub fn new(
        incumbent: CostModelBundle,
        store_dir: impl AsRef<std::path::Path>,
        config: ContinualConfig,
    ) -> Result<Self, StoreError> {
        let lifecycle = ModelLifecycle::open(store_dir, &incumbent, config.lifecycle.clone())?;
        let buffer = ObservationBuffer::new(config.buffer);
        Ok(Self {
            config,
            buffer,
            lifecycle,
            incumbent,
            last_attempt_epoch: None,
            records: Vec::new(),
        })
    }

    /// The observation buffer.
    pub fn buffer(&self) -> &ObservationBuffer {
        &self.buffer
    }

    /// The versioned lifecycle.
    pub fn lifecycle(&self) -> &ModelLifecycle {
        &self.lifecycle
    }

    /// The bundle the learner currently considers incumbent.
    pub fn incumbent(&self) -> &CostModelBundle {
        &self.incumbent
    }

    /// Every promotion decision so far, in order.
    pub fn records(&self) -> &[PromotionRecord] {
        &self.records
    }

    /// Ingests observations reported over the wire
    /// (`POST /v1/observations` → `Service::take_observations`). Unknown
    /// kinds and empty feature sets are skipped, not errors.
    pub fn ingest_wire(&mut self, wires: &[ObservationWire]) {
        for wire in wires {
            let Some(kind) = ObservationKind::from_label(&wire.kind) else {
                continue;
            };
            if wire.features.is_empty() {
                continue;
            }
            self.buffer.insert(Observation {
                kind,
                features: wire.features.clone(),
                predicted_ms: wire.predicted_ms,
                observed_ms: wire.observed_ms,
            });
        }
    }

    /// Converts one controller epoch into observations: a per-device
    /// compute sample plus one forward and one backward comm sample,
    /// each pairing the models' prediction with the simulated ground
    /// truth. Epochs without ground truth contribute nothing.
    fn ingest_epoch(&mut self, observation: &EpochObservation<'_>) {
        let Some(truth) = observation.ground_truth else {
            return;
        };
        let batch = observation.task.batch_size();
        let devices = truth.devices();
        for (d, tables) in observation.assignment.iter().enumerate() {
            if tables.is_empty() {
                continue;
            }
            let Some(cost) = devices.get(d) else { continue };
            let features: Vec<Vec<f32>> = tables.iter().map(|t| table_features(t, batch)).collect();
            let predicted = observation
                .estimated
                .compute_per_device
                .get(d)
                .copied()
                .unwrap_or_default();
            self.buffer.insert(Observation {
                kind: ObservationKind::Compute,
                features,
                predicted_ms: predicted,
                observed_ms: cost.compute_ms(),
            });
        }
        // Comm observations: rebuild exactly the feature rows the
        // simulator fed the comm models (same dims, same start offsets),
        // labeled with the observed max across devices — the quantity
        // the models are trained to predict.
        let dims = Cluster::device_dims(observation.assignment);
        let fwd_starts = observation.estimated.fwd_comm_starts();
        let max_fwd = devices
            .iter()
            .map(|c: &DeviceCost| c.comm_fwd_ms)
            .fold(0.0f64, f64::max);
        self.buffer.insert(Observation {
            kind: ObservationKind::CommForward,
            features: vec![comm_features(&dims, &fwd_starts, batch)],
            predicted_ms: observation.estimated.fwd_comm_ms,
            observed_ms: max_fwd,
        });
        let bwd_starts = vec![0.0; dims.len()];
        let max_bwd = devices
            .iter()
            .map(|c: &DeviceCost| c.comm_bwd_ms)
            .fold(0.0f64, f64::max);
        self.buffer.insert(Observation {
            kind: ObservationKind::CommBackward,
            features: vec![comm_features(&dims, &bwd_starts, batch)],
            predicted_ms: observation.estimated.bwd_comm_ms,
            observed_ms: max_bwd,
        });
    }

    fn cooldown_elapsed(&self, epoch: u64) -> bool {
        match self.last_attempt_epoch {
            None => true,
            Some(last) => epoch.saturating_sub(last) >= self.config.cooldown_epochs.max(1),
        }
    }

    /// Fine-tunes and shadow-evaluates now, regardless of triggers —
    /// the explicit entry point for driving the loop outside the
    /// [`EpochHook`] (e.g. from a serve-daemon control thread). Returns
    /// the promoted bundle when the candidate won.
    pub fn fine_tune_now(
        &mut self,
        epoch: u64,
        probe: &nshard_data::ShardingTask,
    ) -> Option<CostModelBundle> {
        self.last_attempt_epoch = Some(epoch);
        let train = self.buffer.training_data();
        let valid = self.buffer.validation_data();
        let candidate = FineTuner::fine_tune(
            &self.incumbent,
            &train,
            &valid,
            &self.config.settings,
            self.config.seed ^ mix(epoch),
        )?;
        let proposed = self
            .lifecycle
            .propose(&self.incumbent, candidate, &valid, probe);
        // A store failure cannot crash the serving loop: treat it as a
        // rejected proposal (the incumbent keeps serving) and move on.
        let (record, installed) = proposed.ok()?;
        self.records.push(record);
        if let Some(bundle) = installed {
            self.incumbent = bundle.clone();
            return Some(bundle);
        }
        None
    }
}

impl EpochHook for ContinualLearner {
    fn on_epoch(&mut self, observation: &EpochObservation<'_>) -> HookAction {
        self.ingest_epoch(observation);
        let should_try = observation.trigger.is_some()
            && self.buffer.len() >= self.config.min_observations
            && self.cooldown_elapsed(observation.epoch);
        if !should_try {
            return HookAction::Continue;
        }
        match self.fine_tune_now(observation.epoch, observation.task) {
            Some(bundle) => HookAction::SwapModels(Box::new(bundle)),
            None => HookAction::Continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_cost::{CollectConfig, TrainSettings};
    use nshard_data::{ShardingTask, TablePool};
    use nshard_online::{OnlineConfig, OnlineController, ReplanStrategy, WorkloadDrift};

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("nshard_continual_{tag}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create temp dir");
            Self(dir)
        }
        fn path(&self) -> &std::path::Path {
            &self.0
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn hooked_run_buffers_observations_and_stays_deterministic() {
        let pool = TablePool::synthetic_dlrm(64, 21);
        let bundle = CostModelBundle::pretrain(
            &pool,
            2,
            &CollectConfig::smoke(),
            &TrainSettings::smoke(),
            21,
        );
        let base = ShardingTask::sample(&pool, 2, 8..=12, 64, 21);
        let run = |tag: &str| {
            let dir = TempDir::new(tag);
            let drift = WorkloadDrift::standard(base.clone(), 3);
            let config = OnlineConfig {
                epochs: 6,
                strategy: ReplanStrategy::Incremental,
                ..OnlineConfig::default()
            };
            let mut learner =
                ContinualLearner::new(bundle.clone(), dir.path(), ContinualConfig::smoke())
                    .expect("store opens");
            let history = OnlineController::new(bundle.clone(), drift, config)
                .run_hooked(&mut learner)
                .expect("run succeeds");
            (history.epochs.len(), learner.buffer.to_bytes())
        };
        let (epochs_a, bytes_a) = run("det_a");
        let (epochs_b, bytes_b) = run("det_b");
        assert!(
            epochs_a >= 6,
            "expected at least the drift epochs, got {epochs_a}"
        );
        assert_eq!(epochs_a, epochs_b);
        assert_eq!(
            bytes_a, bytes_b,
            "hooked observation stream must be bit-deterministic"
        );
        assert!(!bytes_a.is_empty());
    }

    #[test]
    fn wire_ingest_skips_unknown_kinds() {
        let pool = TablePool::synthetic_dlrm(32, 2);
        let bundle = CostModelBundle::pretrain(
            &pool,
            2,
            &CollectConfig::smoke(),
            &TrainSettings::smoke(),
            2,
        );
        let dir = TempDir::new("wire");
        let mut learner =
            ContinualLearner::new(bundle, dir.path(), ContinualConfig::smoke()).unwrap();
        learner.ingest_wire(&[
            ObservationWire {
                kind: "compute".into(),
                features: vec![vec![1.0; 8]],
                predicted_ms: 1.0,
                observed_ms: 2.0,
            },
            ObservationWire {
                kind: "mystery".into(),
                features: vec![vec![1.0; 8]],
                predicted_ms: 1.0,
                observed_ms: 2.0,
            },
            ObservationWire {
                kind: "comm_forward".into(),
                features: vec![],
                predicted_ms: 1.0,
                observed_ms: 2.0,
            },
        ]);
        assert_eq!(learner.buffer().inserted(), 1);
    }
}
