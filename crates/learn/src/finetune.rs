//! Drift-triggered fine-tuning of the pre-trained cost models.
//!
//! Fine-tuning is deliberately conservative: a **low learning rate**
//! (an order of magnitude below pre-training) and, by default, a
//! **frozen encoder** for the DeepSets compute model — the shared
//! per-table encoder captures table geometry that drift does not change,
//! while the head re-calibrates absolute cost levels. The comm MLPs
//! freeze their first layers for the same reason. Freezing is *exact*:
//! frozen parameters are bitwise untouched (see
//! `ComputeCostModel::fine_tune` / `CommCostModel::fine_tune`), so a
//! fine-tuned checkpoint provably cannot have corrupted the pre-trained
//! representation it keeps.
//!
//! Every produced bundle is a candidate only — promotion is the model
//! lifecycle's decision ([`crate::lifecycle`]), never the tuner's.

use serde::{Deserialize, Serialize};

use nshard_cost::{CostModelBundle, TrainSettings};
use nshard_nn::Dataset;

use crate::buffer::LearnDatasets;

/// Fine-tuning hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FineTuneSettings {
    /// Adam epochs over the buffered observations.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate — low by design; defaults to 10× below the
    /// pre-training default so fine-tuning nudges rather than rewrites.
    pub learning_rate: f32,
    /// Keep the DeepSets table encoder bitwise frozen and adapt only the
    /// cost head (default `true`).
    pub freeze_encoder: bool,
    /// Comm-MLP layer indices kept bitwise frozen (default `[0]`, the
    /// input layer).
    pub frozen_comm_layers: Vec<usize>,
    /// Gradient worker threads; `0` = auto (`NSHARD_THREADS`). Results
    /// are bit-identical at any setting.
    pub threads: usize,
    /// A model is only fine-tuned when its dataset has at least this
    /// many samples; smaller datasets leave the model untouched.
    pub min_samples: usize,
}

impl Default for FineTuneSettings {
    fn default() -> Self {
        Self {
            epochs: 12,
            batch_size: 32,
            learning_rate: 1e-4,
            freeze_encoder: true,
            frozen_comm_layers: vec![0],
            threads: 0,
            min_samples: 24,
        }
    }
}

impl FineTuneSettings {
    /// A reduced setting for tests and smoke runs.
    pub fn smoke() -> Self {
        Self {
            epochs: 6,
            batch_size: 16,
            min_samples: 8,
            ..Self::default()
        }
    }

    fn as_train_settings(&self) -> TrainSettings {
        TrainSettings {
            epochs: self.epochs,
            batch_size: self.batch_size,
            learning_rate: self.learning_rate,
            threads: self.threads,
        }
    }
}

/// Fine-tunes an incumbent bundle on buffered ground truth.
#[derive(Debug, Clone, Default)]
pub struct FineTuner;

impl FineTuner {
    /// Produces a candidate bundle: each cost model with enough buffered
    /// data is fine-tuned from the incumbent's weights; the rest carry
    /// over bitwise unchanged. Returns `None` when **no** model had
    /// enough data — there is nothing to propose.
    ///
    /// `valid` is the held-back validation slice; models select their
    /// best epoch against it (falling back to the training data when the
    /// slice is empty for that model). Deterministic per `seed` at any
    /// thread count.
    pub fn fine_tune(
        incumbent: &CostModelBundle,
        train: &LearnDatasets,
        valid: &LearnDatasets,
        settings: &FineTuneSettings,
        seed: u64,
    ) -> Option<CostModelBundle> {
        let ts = settings.as_train_settings();
        let mut tuned_any = false;
        let mut report = *incumbent.report();

        let mut compute = incumbent.compute_model().clone();
        if train.compute.len() >= settings.min_samples {
            let fallback = &train.compute;
            let valid_ds = if valid.compute.is_empty() {
                fallback
            } else {
                &valid.compute
            };
            let tune =
                compute.fine_tune(&train.compute, valid_ds, &ts, settings.freeze_encoder, seed);
            report.compute_test_mse = tune.test_mse;
            report.compute_samples = train.compute.len();
            tuned_any = true;
        }

        let mut comm_fwd = incumbent.comm_fwd_model().clone();
        let mut comm_bwd = incumbent.comm_bwd_model().clone();
        let tune_comm = |model: &mut nshard_cost::CommCostModel,
                         train_ds: &Option<Dataset>,
                         valid_ds: &Option<Dataset>,
                         salt: u64|
         -> Option<f32> {
            let train_ds = train_ds.as_ref()?;
            if train_ds.len() < settings.min_samples {
                return None;
            }
            let valid_ds = valid_ds.as_ref().unwrap_or(train_ds);
            let tune = model.fine_tune(
                train_ds,
                valid_ds,
                &ts,
                &settings.frozen_comm_layers,
                seed ^ salt,
            );
            Some(tune.valid_mse)
        };
        let mut comm_samples = 0usize;
        if let Some(mse) = tune_comm(&mut comm_fwd, &train.comm_fwd, &valid.comm_fwd, 0x0f0d) {
            report.fwd_comm_test_mse = mse;
            comm_samples += train.comm_fwd.as_ref().map_or(0, Dataset::len);
            tuned_any = true;
        }
        if let Some(mse) = tune_comm(&mut comm_bwd, &train.comm_bwd, &valid.comm_bwd, 0x0b0d) {
            report.bwd_comm_test_mse = mse;
            comm_samples += train.comm_bwd.as_ref().map_or(0, Dataset::len);
            tuned_any = true;
        }
        if comm_samples > 0 {
            report.comm_samples = comm_samples;
        }

        tuned_any.then(|| {
            CostModelBundle::from_parts(compute, comm_fwd, comm_bwd, incumbent.batch_size(), report)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufferConfig, Observation, ObservationBuffer, ObservationKind};
    use nshard_cost::{table_features, CollectConfig};
    use nshard_data::{TableConfig, TablePool};

    fn smoke_bundle() -> CostModelBundle {
        let pool = TablePool::synthetic_dlrm(64, 11);
        CostModelBundle::pretrain(
            &pool,
            2,
            &CollectConfig::smoke(),
            &nshard_cost::TrainSettings::smoke(),
            11,
        )
    }

    fn compute_obs(bundle: &CostModelBundle, table: &TableConfig, scale: f64) -> Observation {
        let profile = table.profile(bundle.batch_size());
        let features = vec![table_features(&profile, bundle.batch_size())];
        let predicted = bundle.compute_model().predict(&features);
        Observation {
            kind: ObservationKind::Compute,
            features,
            predicted_ms: predicted,
            observed_ms: predicted * scale,
        }
    }

    #[test]
    fn too_little_data_yields_no_candidate() {
        let bundle = smoke_bundle();
        let buffer = ObservationBuffer::new(BufferConfig::default());
        let candidate = FineTuner::fine_tune(
            &bundle,
            &buffer.training_data(),
            &buffer.validation_data(),
            &FineTuneSettings::smoke(),
            0,
        );
        assert!(candidate.is_none());
    }

    #[test]
    fn fine_tune_is_deterministic_and_adapts_toward_shifted_truth() {
        let bundle = smoke_bundle();
        let pool = TablePool::synthetic_dlrm(64, 11);
        let mut buffer = ObservationBuffer::new(BufferConfig {
            validation_stride: u64::MAX,
            ..BufferConfig::default()
        });
        // Ground truth runs 1.6× the incumbent's predictions.
        for table in pool.tables() {
            buffer.insert(compute_obs(&bundle, table, 1.6));
        }
        let train = buffer.training_data();
        let settings = FineTuneSettings::smoke();
        let a = FineTuner::fine_tune(&bundle, &train, &buffer.validation_data(), &settings, 9)
            .expect("enough data");
        let b = FineTuner::fine_tune(&bundle, &train, &buffer.validation_data(), &settings, 9)
            .expect("enough data");
        assert_eq!(a, b, "fine-tuning must be bit-deterministic per seed");
        // The candidate predicts closer to the shifted truth than the
        // incumbent does.
        assert!(
            a.compute_model().evaluate_mse(&train.compute)
                <= bundle.compute_model().evaluate_mse(&train.compute)
        );
        // Comm models had no data, so they carry over bitwise.
        assert_eq!(a.comm_fwd_model(), bundle.comm_fwd_model());
        assert_eq!(a.comm_bwd_model(), bundle.comm_bwd_model());
    }
}
