//! Versioned model lifecycle: shadow-evaluate, promote or roll back.
//!
//! A fine-tuned candidate never serves directly. It must first pass a
//! **shadow evaluation** against the incumbent:
//!
//! 1. **Held-back validation** — the candidate's MSE on the buffer's
//!    validation slice (data no fine-tuning step ever saw) must not be
//!    worse than the incumbent's. A candidate that memorized poisoned or
//!    unrepresentative training samples fails here.
//! 2. **Train→search conformance** — the candidate must still *search
//!    well*: a NeuroShard run on a probe task must produce a
//!    memory-feasible plan whose estimated cost agrees with the exact
//!    ground-truth oracle within the workspace's conformance band
//!    (`max(est/exact, exact/est) ≤ band`). Low validation MSE with a
//!    broken cost surface (e.g. a collapsed head) fails here.
//!
//! Promotion is atomic from the caller's perspective: the versioned
//! checkpoint and the `active` checkpoint are written through the
//! checksum-framed [`ModelStore`], and only then is the bundle handed
//! back for installation. A rejected candidate leaves the active
//! checkpoint **byte-identical** — the rollback guarantee the
//! `bench_learn` regression gate asserts — while still being archived
//! under a `rejected` name for post-mortems.

use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use nshard_core::{evaluate_plan_exact, NeuroShard, NeuroShardConfig};
use nshard_cost::CostModelBundle;
use nshard_data::ShardingTask;
use nshard_serve::{ModelStore, StoreError};
use nshard_sim::GpuSpec;

use crate::buffer::LearnDatasets;

/// Shadow-evaluation thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleConfig {
    /// Allowed estimated-vs-exact disagreement on the probe search:
    /// `max(est/exact, exact/est)` must stay at or below this. Mirrors
    /// the train→search conformance band.
    pub conformance_band: f64,
    /// Slack on the validation-MSE gate: the candidate passes when
    /// `candidate_mse ≤ incumbent_mse × mse_tolerance`. `1.0` = strictly
    /// no worse.
    pub mse_tolerance: f32,
    /// Search knobs for the probe search (smoke-sized by default — the
    /// probe is a conformance check, not a production search).
    pub probe_search: NeuroShardConfig,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        Self {
            conformance_band: 1.5,
            mse_tolerance: 1.05,
            probe_search: NeuroShardConfig::smoke(),
        }
    }
}

/// The recorded outcome of one promotion decision — serialized into the
/// golden fixtures, so field order and content must stay deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PromotionRecord {
    /// Proposal ordinal (1-based, counts rejected proposals too).
    pub proposal: u64,
    /// Active model version **after** the decision.
    pub version: u64,
    /// `true` when the candidate was promoted.
    pub promoted: bool,
    /// Stable machine-readable reason label: `"promoted"`,
    /// `"validation_regression"`, `"infeasible"` or `"conformance"`.
    pub reason: String,
    /// Candidate MSE on the held-back validation slice (NaN when the
    /// slice had no compute samples — the gate then passes vacuously).
    pub candidate_valid_mse: f32,
    /// Incumbent MSE on the same slice.
    pub incumbent_valid_mse: f32,
    /// Probe-search agreement `max(est/exact, exact/est)`; NaN when the
    /// probe search itself failed.
    pub conformance_ratio: f64,
    /// `true` when the probe search produced a memory-feasible plan.
    pub feasible: bool,
}

/// The versioned promote-or-rollback state machine over a [`ModelStore`].
pub struct ModelLifecycle {
    store: ModelStore,
    config: LifecycleConfig,
    version: u64,
    proposals: u64,
    active_path: PathBuf,
}

/// Checkpoint name of the bundle currently serving.
pub const ACTIVE_NAME: &str = "cost-bundle-active";

impl ModelLifecycle {
    /// Opens the lifecycle over `dir` and persists `incumbent` as the
    /// version-1 active checkpoint.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the store cannot be created or written.
    pub fn open(
        dir: impl AsRef<std::path::Path>,
        incumbent: &CostModelBundle,
        config: LifecycleConfig,
    ) -> Result<Self, StoreError> {
        let store = ModelStore::open(dir)?;
        store.save("cost-bundle-v1", incumbent)?;
        let active_path = store.save(ACTIVE_NAME, incumbent)?;
        Ok(Self {
            store,
            config,
            version: 1,
            proposals: 0,
            active_path,
        })
    }

    /// The active model version (1 = the pre-trained incumbent).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Proposals evaluated so far (promoted or not).
    pub fn proposals(&self) -> u64 {
        self.proposals
    }

    /// Path of the active checkpoint file — the byte-identity anchor for
    /// rollback tests.
    pub fn active_path(&self) -> &std::path::Path {
        &self.active_path
    }

    /// The underlying checkpoint registry.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// Reloads the active checkpoint from disk.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the checkpoint is missing or corrupt.
    pub fn load_active(&self) -> Result<CostModelBundle, StoreError> {
        self.store.load(ACTIVE_NAME)
    }

    /// Shadow-evaluates `candidate` against `incumbent` and either
    /// promotes it (returning the bundle to install) or rolls back
    /// (returning `None`, active checkpoint untouched).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when a checkpoint write fails. Evaluation failures
    /// are not errors — they are rejections, recorded in the
    /// [`PromotionRecord`].
    pub fn propose(
        &mut self,
        incumbent: &CostModelBundle,
        candidate: CostModelBundle,
        validation: &LearnDatasets,
        probe: &ShardingTask,
    ) -> Result<(PromotionRecord, Option<CostModelBundle>), StoreError> {
        self.proposals += 1;
        let proposal = self.proposals;

        // Gate 1: held-back validation MSE, candidate vs incumbent.
        let (candidate_mse, incumbent_mse) = if validation.compute.is_empty() {
            (f32::NAN, f32::NAN)
        } else {
            (
                candidate.compute_model().evaluate_mse(&validation.compute),
                incumbent.compute_model().evaluate_mse(&validation.compute),
            )
        };
        let mse_ok =
            candidate_mse.is_nan() || candidate_mse <= incumbent_mse * self.config.mse_tolerance;

        // Gate 2: the candidate must still search well — feasible probe
        // plan, estimate within the conformance band of the exact oracle.
        let (feasible, ratio) = self.probe_conformance(&candidate, probe);
        let conformance_ok = feasible && ratio <= self.config.conformance_band;

        let reason = if !mse_ok {
            "validation_regression"
        } else if !feasible {
            "infeasible"
        } else if !conformance_ok {
            "conformance"
        } else {
            "promoted"
        };
        let promoted = reason == "promoted";

        let installed = if promoted {
            self.version += 1;
            self.store
                .save(&format!("cost-bundle-v{}", self.version), &candidate)?;
            self.active_path = self.store.save(ACTIVE_NAME, &candidate)?;
            Some(candidate)
        } else {
            // Archive for post-mortems; the active checkpoint stays
            // byte-identical.
            self.store
                .save(&format!("cost-bundle-rejected-p{proposal}"), &candidate)?;
            None
        };

        let record = PromotionRecord {
            proposal,
            version: self.version,
            promoted,
            reason: reason.to_string(),
            candidate_valid_mse: candidate_mse,
            incumbent_valid_mse: incumbent_mse,
            conformance_ratio: ratio,
            feasible,
        };
        Ok((record, installed))
    }

    /// Runs the probe search under `bundle` and compares its estimate to
    /// the exact oracle. Returns `(feasible, ratio)`; an infeasible or
    /// failed search yields `(false, NaN)`.
    fn probe_conformance(&self, bundle: &CostModelBundle, probe: &ShardingTask) -> (bool, f64) {
        let Ok(sharder) = NeuroShard::try_new(bundle.clone(), self.config.probe_search) else {
            return (false, f64::NAN);
        };
        let Ok(outcome) = sharder.shard_with_stats(probe) else {
            return (false, f64::NAN);
        };
        let Ok(exact) = evaluate_plan_exact(probe, &outcome.plan, &GpuSpec::default()) else {
            return (false, f64::NAN);
        };
        let exact_ms = exact.max_total_ms();
        let est_ms = outcome.estimated_cost_ms;
        if exact_ms <= 0.0 || est_ms <= 0.0 || exact_ms.is_nan() || est_ms.is_nan() {
            return (true, f64::NAN);
        }
        (true, (est_ms / exact_ms).max(exact_ms / est_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_cost::{CollectConfig, TrainSettings};
    use nshard_data::TablePool;

    fn setup(tag: &str) -> (CostModelBundle, ShardingTask, TempDir) {
        let pool = TablePool::synthetic_dlrm(64, 5);
        let bundle = CostModelBundle::pretrain(
            &pool,
            2,
            &CollectConfig::smoke(),
            &TrainSettings::smoke(),
            5,
        );
        let task = ShardingTask::sample(&pool, 2, 8..=12, 64, 5);
        (bundle, task, TempDir::new(tag))
    }

    /// Minimal self-removing temp dir (same idiom as the serve store
    /// tests — tag + pid keeps parallel test binaries apart).
    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("nshard_lifecycle_{tag}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create temp dir");
            Self(dir)
        }
        fn path(&self) -> &std::path::Path {
            &self.0
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn healthy_incumbent_copy_promotes() {
        let (bundle, task, dir) = setup("promote");
        let mut lifecycle =
            ModelLifecycle::open(dir.path(), &bundle, LifecycleConfig::default()).unwrap();
        let validation =
            crate::buffer::ObservationBuffer::new(Default::default()).validation_data();
        let (record, installed) = lifecycle
            .propose(&bundle, bundle.clone(), &validation, &task)
            .unwrap();
        assert!(record.promoted, "reason: {}", record.reason);
        assert_eq!(record.version, 2);
        assert!(installed.is_some());
        assert_eq!(lifecycle.load_active().unwrap(), bundle);
    }

    #[test]
    fn broken_candidate_rolls_back_with_active_bytes_untouched() {
        let (bundle, task, dir) = setup("rollback");
        let mut lifecycle =
            ModelLifecycle::open(dir.path(), &bundle, LifecycleConfig::default()).unwrap();
        let before = std::fs::read(lifecycle.active_path()).unwrap();
        // A freshly-initialized (untrained) compute model: predicts
        // garbage, so the probe search disagrees with the oracle far
        // beyond the band.
        let broken = CostModelBundle::from_parts(
            nshard_cost::ComputeCostModel::new(99),
            bundle.comm_fwd_model().clone(),
            bundle.comm_bwd_model().clone(),
            bundle.batch_size(),
            *bundle.report(),
        );
        let validation =
            crate::buffer::ObservationBuffer::new(Default::default()).validation_data();
        let (record, installed) = lifecycle
            .propose(&bundle, broken, &validation, &task)
            .unwrap();
        assert!(!record.promoted);
        assert!(installed.is_none());
        assert_eq!(record.version, 1);
        let after = std::fs::read(lifecycle.active_path()).unwrap();
        assert_eq!(
            before, after,
            "rollback must leave the active checkpoint byte-identical"
        );
    }
}
