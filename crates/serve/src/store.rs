//! The versioned plan & model store behind the daemon.
//!
//! Two registries live here, both persisted as versioned-envelope JSON
//! documents (see `nshard_nn::serialize`) so a restarted daemon boots warm
//! and refuses artifacts from unsupported format versions with a typed
//! error instead of undefined behavior:
//!
//! * [`PlanStore`] — every **adopted** [`ShardingPlan`] with its
//!   [`PlanProvenance`], keyed by a deterministic content-addressed id and
//!   stamped with a monotonically increasing adoption `version`. Adoption
//!   is idempotent by id, which keeps concurrent identical requests
//!   bit-deterministic: the first adoption wins and every duplicate maps
//!   to the same stored record.
//! * [`ModelStore`] — named cost-model checkpoints ([`CostModelBundle`]s)
//!   the planning engine loads at startup.
//!
//! On-disk layout under the store directory:
//!
//! ```text
//! store/
//!   plans/<id>.json      (envelope; payload = StoredPlan)
//!   models/<name>.json   (envelope; payload = CostModelBundle)
//! ```

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use nshard_core::{PlanProvenance, ShardingPlan};
use nshard_cost::CostModelBundle;
use nshard_data::ShardingTask;
use nshard_nn::serialize::{load_envelope, save_envelope, CheckpointError};

/// The producer tag written into envelope headers.
const CREATED_BY: &str = "nshard-serve";

/// Errors of the plan/model store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem trouble outside an envelope read/write.
    Io {
        /// The path involved.
        path: String,
        /// Rendered I/O error.
        error: String,
    },
    /// A persisted artifact failed to load or save (parse, version or I/O).
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, error } => write!(f, "store I/O failed for {path}: {error}"),
            StoreError::Checkpoint(e) => write!(f, "store artifact error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CheckpointError> for StoreError {
    fn from(e: CheckpointError) -> Self {
        StoreError::Checkpoint(e)
    }
}

/// One adopted plan: the daemon's unit of persistence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredPlan {
    /// Content-addressed id (hex of the task+plan fingerprint).
    pub id: String,
    /// Adoption sequence number (1-based, monotonic per store).
    pub version: u64,
    /// The task the plan was produced for.
    pub task: ShardingTask,
    /// The adopted plan.
    pub plan: ShardingPlan,
    /// How the plan was obtained.
    pub provenance: PlanProvenance,
    /// Predicted embedding cost under the cost models, ms.
    pub predicted_ms: f64,
    /// Whether the serving layer degraded the search (deadline pressure).
    pub degraded: bool,
}

struct PlanStoreInner {
    plans: HashMap<String, StoredPlan>,
    /// Adoption order (ids), oldest first; parallel to `version` stamps.
    order: Vec<String>,
    next_version: u64,
}

/// The versioned, optionally disk-backed registry of adopted plans.
pub struct PlanStore {
    inner: Mutex<PlanStoreInner>,
    dir: Option<PathBuf>,
}

impl PlanStore {
    /// A store that lives only in memory.
    pub fn in_memory() -> Self {
        Self {
            inner: Mutex::new(PlanStoreInner {
                plans: HashMap::new(),
                order: Vec::new(),
                next_version: 1,
            }),
            dir: None,
        }
    }

    /// Opens (creating if needed) a disk-backed store rooted at `dir`,
    /// loading every persisted plan so the daemon restarts warm.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the directory cannot be created or a persisted
    /// plan fails to load (unsupported version, parse error, I/O).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = dir.as_ref().join("plans");
        std::fs::create_dir_all(&root).map_err(|e| StoreError::Io {
            path: root.display().to_string(),
            error: e.to_string(),
        })?;
        let mut plans: Vec<StoredPlan> = Vec::new();
        let entries = std::fs::read_dir(&root).map_err(|e| StoreError::Io {
            path: root.display().to_string(),
            error: e.to_string(),
        })?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::Io {
                path: root.display().to_string(),
                error: e.to_string(),
            })?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let envelope = load_envelope::<StoredPlan>(&path)?;
            plans.push(envelope.payload);
        }
        // Replaying in stamped-version order reconstructs the adoption
        // sequence regardless of directory iteration order.
        plans.sort_by_key(|p| p.version);
        let next_version = plans.iter().map(|p| p.version).max().unwrap_or(0) + 1;
        let order: Vec<String> = plans.iter().map(|p| p.id.clone()).collect();
        Ok(Self {
            inner: Mutex::new(PlanStoreInner {
                plans: plans.into_iter().map(|p| (p.id.clone(), p)).collect(),
                order,
                next_version,
            }),
            dir: Some(dir.as_ref().to_path_buf()),
        })
    }

    /// Adopts a plan: stamps the next version, stores and (when
    /// disk-backed) persists it. Adoption is **idempotent by id** — an id
    /// already in the store returns the existing record unchanged, so
    /// duplicate identical requests never fork versions.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when persisting to disk fails; the in-memory record
    /// is kept consistent either way.
    pub fn adopt(
        &self,
        id: &str,
        task: ShardingTask,
        plan: ShardingPlan,
        provenance: PlanProvenance,
        predicted_ms: f64,
        degraded: bool,
    ) -> Result<StoredPlan, StoreError> {
        let record = {
            let mut inner = self.inner.lock().expect("plan store poisoned");
            if let Some(existing) = inner.plans.get(id) {
                return Ok(existing.clone());
            }
            let record = StoredPlan {
                id: id.to_string(),
                version: inner.next_version,
                task,
                plan,
                provenance,
                predicted_ms,
                degraded,
            };
            inner.next_version += 1;
            inner.plans.insert(id.to_string(), record.clone());
            inner.order.push(id.to_string());
            record
        };
        if let Some(dir) = &self.dir {
            let path = dir.join("plans").join(format!("{id}.json"));
            save_envelope(&path, id, CREATED_BY, &record)?;
        }
        Ok(record)
    }

    /// Looks up a plan by id.
    pub fn get(&self, id: &str) -> Option<StoredPlan> {
        self.inner
            .lock()
            .expect("plan store poisoned")
            .plans
            .get(id)
            .cloned()
    }

    /// The most recently adopted plan.
    pub fn latest(&self) -> Option<StoredPlan> {
        let inner = self.inner.lock().expect("plan store poisoned");
        inner
            .order
            .last()
            .and_then(|id| inner.plans.get(id))
            .cloned()
    }

    /// Number of stored plans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan store poisoned").plans.len()
    }

    /// Whether the store holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All stored ids in adoption order.
    pub fn ids(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("plan store poisoned")
            .order
            .clone()
    }
}

/// The named cost-model checkpoint registry.
pub struct ModelStore {
    dir: PathBuf,
}

impl ModelStore {
    /// Opens (creating if needed) a model store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = dir.as_ref().join("models");
        std::fs::create_dir_all(&root).map_err(|e| StoreError::Io {
            path: root.display().to_string(),
            error: e.to_string(),
        })?;
        Ok(Self { dir: root })
    }

    /// Persists a bundle checkpoint under `name`.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the envelope cannot be written.
    pub fn save(&self, name: &str, bundle: &CostModelBundle) -> Result<PathBuf, StoreError> {
        let path = self.dir.join(format!("{name}.json"));
        save_envelope(&path, name, CREATED_BY, bundle)?;
        Ok(path)
    }

    /// Loads and version-checks the bundle checkpoint named `name` — the
    /// daemon's warm-start path.
    ///
    /// # Errors
    ///
    /// [`StoreError::Checkpoint`] with a typed cause: I/O (missing file),
    /// unsupported version, or parse failure.
    pub fn load(&self, name: &str) -> Result<CostModelBundle, StoreError> {
        let path = self.dir.join(format!("{name}.json"));
        Ok(load_envelope::<CostModelBundle>(&path)?.payload)
    }

    /// Names of every stored checkpoint, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|e| {
                let p = e.path();
                if p.extension().and_then(|x| x.to_str()) == Some("json") {
                    p.file_stem().and_then(|s| s.to_str()).map(String::from)
                } else {
                    None
                }
            })
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_core::PlanSource;
    use nshard_data::{TableConfig, TableId};

    fn task() -> ShardingTask {
        let tables: Vec<TableConfig> = (0..4)
            .map(|i| TableConfig::new(TableId(i), 32, 4096, 8.0, 1.0))
            .collect();
        ShardingTask::new(tables, 2, 1 << 30, 1024)
    }

    fn plan(task: &ShardingTask) -> ShardingPlan {
        ShardingPlan::new(
            Vec::new(),
            task.tables().to_vec(),
            (0..task.num_tables()).map(|i| i % 2).collect(),
            2,
        )
        .unwrap()
    }

    fn provenance() -> PlanProvenance {
        PlanProvenance {
            source: PlanSource::Primary {
                algorithm: "test".into(),
            },
            events: Vec::new(),
            total_retries: 0,
            total_backoff_ms: 0,
            replan: None,
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nshard_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn adoption_is_versioned_and_idempotent() {
        let store = PlanStore::in_memory();
        let t = task();
        let p = plan(&t);
        let a = store
            .adopt("aaaa", t.clone(), p.clone(), provenance(), 1.0, false)
            .unwrap();
        let b = store
            .adopt("bbbb", t.clone(), p.clone(), provenance(), 2.0, false)
            .unwrap();
        assert_eq!(a.version, 1);
        assert_eq!(b.version, 2);
        // Re-adopting an existing id returns the original record.
        let a2 = store.adopt("aaaa", t, p, provenance(), 99.0, true).unwrap();
        assert_eq!(a2, a);
        assert_eq!(store.len(), 2);
        assert_eq!(store.latest().unwrap().id, "bbbb");
        assert_eq!(store.ids(), vec!["aaaa".to_string(), "bbbb".to_string()]);
    }

    #[test]
    fn disk_store_restarts_warm() {
        let dir = tmp("warm");
        let t = task();
        let p = plan(&t);
        {
            let store = PlanStore::open(&dir).unwrap();
            store
                .adopt("p1", t.clone(), p.clone(), provenance(), 1.5, false)
                .unwrap();
            store
                .adopt("p2", t.clone(), p.clone(), provenance(), 2.5, true)
                .unwrap();
        }
        // A fresh process opens the same directory and sees everything.
        let reopened = PlanStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.latest().unwrap().id, "p2");
        assert_eq!(reopened.get("p1").unwrap().predicted_ms, 1.5);
        // Versions continue from where they left off.
        let third = reopened
            .adopt("p3", t, p, provenance(), 3.5, false)
            .unwrap();
        assert_eq!(third.version, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_model_is_a_typed_error() {
        let dir = tmp("models");
        let store = ModelStore::open(&dir).unwrap();
        assert!(store.list().is_empty());
        match store.load("nope") {
            Err(StoreError::Checkpoint(CheckpointError::Io { .. })) => {}
            other => panic!("expected typed I/O checkpoint error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
