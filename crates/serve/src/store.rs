//! The versioned plan & model store behind the daemon.
//!
//! Two registries live here, both persisted as versioned-envelope JSON
//! documents (see `nshard_nn::serialize`) so a restarted daemon boots warm
//! and refuses artifacts from unsupported format versions with a typed
//! error instead of undefined behavior:
//!
//! * [`PlanStore`] — every **adopted** [`ShardingPlan`] with its
//!   [`PlanProvenance`], keyed by a deterministic content-addressed id and
//!   stamped with a monotonically increasing adoption `version`. Adoption
//!   is idempotent by id, which keeps concurrent identical requests
//!   bit-deterministic: the first adoption wins and every duplicate maps
//!   to the same stored record.
//! * [`ModelStore`] — named cost-model checkpoints ([`CostModelBundle`]s)
//!   the planning engine loads at startup.
//!
//! On-disk layout under the store directory:
//!
//! ```text
//! store/
//!   plans/<id>.json      (checksummed envelope; payload = StoredPlan)
//!   models/<name>.json   (checksummed envelope; payload = CostModelBundle)
//! ```
//!
//! ## Torn-write hardening
//!
//! Every file this module writes is framed with a leading checksum line
//! (`#nshard-checksum: <fnv64 hex>` over the rest of the file) so a write
//! torn by a crash — truncation, a half-flushed page, a bit flip — is
//! *detected* instead of parsed into garbage. On warm restart,
//! [`PlanStore::open`] **quarantines** corrupt entries (renames them to
//! `*.json.quarantined`) and keeps booting with the surviving plans rather
//! than refusing to start; [`PlanStore::quarantined`] reports how many were
//! set aside. Files written by pre-checksum builds carry no magic line and
//! still load unchanged.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use nshard_core::{PlanProvenance, ShardingPlan};
use nshard_cost::CostModelBundle;
use nshard_data::ShardingTask;
use nshard_nn::serialize::{envelope_from_json, envelope_to_json, CheckpointError, Envelope};

/// The producer tag written into envelope headers.
const CREATED_BY: &str = "nshard-serve";

/// Magic prefix of the checksum line framing every persisted artifact.
const CHECKSUM_MAGIC: &str = "#nshard-checksum: ";

/// FNV-1a over a byte string — the same cheap, dependency-free digest the
/// engine uses for content-addressed plan ids.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Errors of the plan/model store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem trouble outside an envelope read/write.
    Io {
        /// The path involved.
        path: String,
        /// Rendered I/O error.
        error: String,
    },
    /// A persisted artifact failed to load or save (parse, version or I/O).
    Checkpoint(CheckpointError),
    /// A persisted artifact failed its checksum — a torn or tampered write.
    Corrupt {
        /// The file involved.
        path: String,
        /// What the detector saw.
        reason: String,
    },
    /// The daemon configuration is internally inconsistent — rejected at
    /// construction with the typed search-config error instead of
    /// panicking on the first request.
    InvalidConfig(nshard_core::ConfigError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, error } => write!(f, "store I/O failed for {path}: {error}"),
            StoreError::Checkpoint(e) => write!(f, "store artifact error: {e}"),
            StoreError::Corrupt { path, reason } => {
                write!(f, "store artifact {path} is corrupt: {reason}")
            }
            StoreError::InvalidConfig(e) => write!(f, "invalid serve configuration: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CheckpointError> for StoreError {
    fn from(e: CheckpointError) -> Self {
        StoreError::Checkpoint(e)
    }
}

/// Writes `payload` as a checksum-framed versioned envelope: the first
/// line is `#nshard-checksum: <fnv64 hex of the remainder>`, the rest the
/// envelope JSON.
fn write_checked<T: Serialize>(path: &Path, name: &str, payload: &T) -> Result<(), StoreError> {
    let body = envelope_to_json(name, CREATED_BY, payload);
    let framed = format!("{CHECKSUM_MAGIC}{:016x}\n{body}", fnv64(body.as_bytes()));
    std::fs::write(path, framed).map_err(|e| StoreError::Io {
        path: path.display().to_string(),
        error: e.to_string(),
    })
}

/// Reads a checksum-framed envelope written by [`write_checked`]. Files
/// without the magic first line (pre-checksum builds) parse as plain
/// envelopes, so old stores keep loading.
///
/// # Errors
///
/// [`StoreError::Corrupt`] on a checksum mismatch or an unparseable
/// checksum line; [`StoreError::Checkpoint`] / [`StoreError::Io`] as for
/// any envelope load.
fn read_checked<T: Deserialize>(path: &Path) -> Result<Envelope<T>, StoreError> {
    let raw = std::fs::read_to_string(path).map_err(|e| {
        StoreError::Checkpoint(CheckpointError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        })
    })?;
    let body = match raw.strip_prefix(CHECKSUM_MAGIC) {
        None => raw.as_str(),
        Some(rest) => {
            let (stamp, body) = rest.split_once('\n').ok_or_else(|| StoreError::Corrupt {
                path: path.display().to_string(),
                reason: "checksum line is not newline-terminated (truncated write)".into(),
            })?;
            let want = u64::from_str_radix(stamp.trim(), 16).map_err(|_| StoreError::Corrupt {
                path: path.display().to_string(),
                reason: format!("unparseable checksum stamp {stamp:?}"),
            })?;
            let got = fnv64(body.as_bytes());
            if got != want {
                return Err(StoreError::Corrupt {
                    path: path.display().to_string(),
                    reason: format!("checksum mismatch: stamped {want:016x}, computed {got:016x}"),
                });
            }
            body
        }
    };
    Ok(envelope_from_json(body)?)
}

/// Whether a load failure means the *file* is damaged (quarantine it)
/// rather than the build being incompatible or the filesystem failing
/// (surface those).
fn is_damage(err: &StoreError) -> bool {
    matches!(
        err,
        StoreError::Corrupt { .. }
            | StoreError::Checkpoint(CheckpointError::Parse(_))
            | StoreError::Checkpoint(CheckpointError::MalformedHeader { .. })
    )
}

/// One adopted plan: the daemon's unit of persistence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredPlan {
    /// Content-addressed id (hex of the task+plan fingerprint).
    pub id: String,
    /// Adoption sequence number (1-based, monotonic per store).
    pub version: u64,
    /// The task the plan was produced for.
    pub task: ShardingTask,
    /// The adopted plan.
    pub plan: ShardingPlan,
    /// How the plan was obtained.
    pub provenance: PlanProvenance,
    /// Predicted embedding cost under the cost models, ms.
    pub predicted_ms: f64,
    /// Whether the serving layer degraded the search (deadline pressure).
    pub degraded: bool,
}

struct PlanStoreInner {
    plans: HashMap<String, StoredPlan>,
    /// Adoption order (ids), oldest first; parallel to `version` stamps.
    order: Vec<String>,
    next_version: u64,
}

/// The versioned, optionally disk-backed registry of adopted plans.
pub struct PlanStore {
    inner: Mutex<PlanStoreInner>,
    dir: Option<PathBuf>,
    quarantined: usize,
}

impl PlanStore {
    /// A store that lives only in memory.
    pub fn in_memory() -> Self {
        Self {
            inner: Mutex::new(PlanStoreInner {
                plans: HashMap::new(),
                order: Vec::new(),
                next_version: 1,
            }),
            dir: None,
            quarantined: 0,
        }
    }

    /// Opens (creating if needed) a disk-backed store rooted at `dir`,
    /// loading every persisted plan so the daemon restarts warm. Entries
    /// that fail their checksum or do not parse — torn writes from a crash
    /// mid-persist — are renamed to `*.json.quarantined` and skipped, so
    /// one damaged file never blocks the whole store from booting.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the directory cannot be created, a file cannot
    /// be read or renamed, or a persisted plan carries an unsupported
    /// format version (a build problem, not file damage — never
    /// quarantined silently).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = dir.as_ref().join("plans");
        std::fs::create_dir_all(&root).map_err(|e| StoreError::Io {
            path: root.display().to_string(),
            error: e.to_string(),
        })?;
        let mut plans: Vec<StoredPlan> = Vec::new();
        let mut quarantined = 0usize;
        let entries = std::fs::read_dir(&root).map_err(|e| StoreError::Io {
            path: root.display().to_string(),
            error: e.to_string(),
        })?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::Io {
                path: root.display().to_string(),
                error: e.to_string(),
            })?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            match read_checked::<StoredPlan>(&path) {
                Ok(envelope) => plans.push(envelope.payload),
                Err(e) if is_damage(&e) => {
                    let aside = path.with_extension("json.quarantined");
                    std::fs::rename(&path, &aside).map_err(|e| StoreError::Io {
                        path: path.display().to_string(),
                        error: e.to_string(),
                    })?;
                    quarantined += 1;
                }
                Err(e) => return Err(e),
            }
        }
        // Replaying in stamped-version order reconstructs the adoption
        // sequence regardless of directory iteration order.
        plans.sort_by_key(|p| p.version);
        let next_version = plans.iter().map(|p| p.version).max().unwrap_or(0) + 1;
        let order: Vec<String> = plans.iter().map(|p| p.id.clone()).collect();
        Ok(Self {
            inner: Mutex::new(PlanStoreInner {
                plans: plans.into_iter().map(|p| (p.id.clone(), p)).collect(),
                order,
                next_version,
            }),
            dir: Some(dir.as_ref().to_path_buf()),
            quarantined,
        })
    }

    /// How many persisted entries the last [`PlanStore::open`] quarantined
    /// as corrupt (always `0` for in-memory stores).
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }

    /// Adopts a plan: stamps the next version, stores and (when
    /// disk-backed) persists it. Adoption is **idempotent by id** — an id
    /// already in the store returns the existing record unchanged, so
    /// duplicate identical requests never fork versions.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when persisting to disk fails; the in-memory record
    /// is kept consistent either way.
    pub fn adopt(
        &self,
        id: &str,
        task: ShardingTask,
        plan: ShardingPlan,
        provenance: PlanProvenance,
        predicted_ms: f64,
        degraded: bool,
    ) -> Result<StoredPlan, StoreError> {
        self.adopt_new(id, task, plan, provenance, predicted_ms, degraded)
            .map(|(record, _)| record)
    }

    /// Like [`PlanStore::adopt`], but also reports whether this call
    /// actually created the record (`true`) or hit the idempotent
    /// duplicate path (`false`) — the replication layer only logs the
    /// former.
    ///
    /// # Errors
    ///
    /// As for [`PlanStore::adopt`].
    pub fn adopt_new(
        &self,
        id: &str,
        task: ShardingTask,
        plan: ShardingPlan,
        provenance: PlanProvenance,
        predicted_ms: f64,
        degraded: bool,
    ) -> Result<(StoredPlan, bool), StoreError> {
        let record = {
            let mut inner = self.inner.lock().expect("plan store poisoned");
            if let Some(existing) = inner.plans.get(id) {
                return Ok((existing.clone(), false));
            }
            let record = StoredPlan {
                id: id.to_string(),
                version: inner.next_version,
                task,
                plan,
                provenance,
                predicted_ms,
                degraded,
            };
            inner.next_version += 1;
            inner.plans.insert(id.to_string(), record.clone());
            inner.order.push(id.to_string());
            record
        };
        self.persist(&record)?;
        Ok((record, true))
    }

    /// Installs a leader-stamped record as-is — the follower's apply path.
    /// The record keeps the **leader's** version (replicas must agree
    /// byte-for-byte); the local version counter advances past it so a
    /// promoted follower stamps fresh adoptions above everything it
    /// replicated. Idempotent by id, like [`PlanStore::adopt`].
    ///
    /// # Errors
    ///
    /// [`StoreError`] when persisting to disk fails.
    pub fn insert_replica(&self, record: StoredPlan) -> Result<(), StoreError> {
        {
            let mut inner = self.inner.lock().expect("plan store poisoned");
            if inner.plans.contains_key(&record.id) {
                return Ok(());
            }
            inner.next_version = inner.next_version.max(record.version + 1);
            inner.order.push(record.id.clone());
            inner.plans.insert(record.id.clone(), record.clone());
        }
        self.persist(&record)
    }

    fn persist(&self, record: &StoredPlan) -> Result<(), StoreError> {
        if let Some(dir) = &self.dir {
            let path = dir.join("plans").join(format!("{}.json", record.id));
            write_checked(&path, &record.id, record)?;
        }
        Ok(())
    }

    /// Looks up a plan by id.
    pub fn get(&self, id: &str) -> Option<StoredPlan> {
        self.inner
            .lock()
            .expect("plan store poisoned")
            .plans
            .get(id)
            .cloned()
    }

    /// The most recently adopted plan.
    pub fn latest(&self) -> Option<StoredPlan> {
        let inner = self.inner.lock().expect("plan store poisoned");
        inner
            .order
            .last()
            .and_then(|id| inner.plans.get(id))
            .cloned()
    }

    /// Number of stored plans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan store poisoned").plans.len()
    }

    /// Whether the store holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All stored ids in adoption order.
    pub fn ids(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("plan store poisoned")
            .order
            .clone()
    }
}

/// The named cost-model checkpoint registry.
pub struct ModelStore {
    dir: PathBuf,
}

impl ModelStore {
    /// Opens (creating if needed) a model store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = dir.as_ref().join("models");
        std::fs::create_dir_all(&root).map_err(|e| StoreError::Io {
            path: root.display().to_string(),
            error: e.to_string(),
        })?;
        Ok(Self { dir: root })
    }

    /// Persists a bundle checkpoint under `name`.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the envelope cannot be written.
    pub fn save(&self, name: &str, bundle: &CostModelBundle) -> Result<PathBuf, StoreError> {
        let path = self.dir.join(format!("{name}.json"));
        write_checked(&path, name, bundle)?;
        Ok(path)
    }

    /// Loads and version-checks the bundle checkpoint named `name` — the
    /// daemon's warm-start path.
    ///
    /// # Errors
    ///
    /// [`StoreError::Checkpoint`] with a typed cause: I/O (missing file),
    /// unsupported version, or parse failure — or [`StoreError::Corrupt`]
    /// when the checkpoint fails its checksum.
    pub fn load(&self, name: &str) -> Result<CostModelBundle, StoreError> {
        let path = self.dir.join(format!("{name}.json"));
        Ok(read_checked::<CostModelBundle>(&path)?.payload)
    }

    /// Names of every stored checkpoint, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|e| {
                let p = e.path();
                if p.extension().and_then(|x| x.to_str()) == Some("json") {
                    p.file_stem().and_then(|s| s.to_str()).map(String::from)
                } else {
                    None
                }
            })
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_core::PlanSource;
    use nshard_data::{TableConfig, TableId};

    fn task() -> ShardingTask {
        let tables: Vec<TableConfig> = (0..4)
            .map(|i| TableConfig::new(TableId(i), 32, 4096, 8.0, 1.0))
            .collect();
        ShardingTask::new(tables, 2, 1 << 30, 1024)
    }

    fn plan(task: &ShardingTask) -> ShardingPlan {
        ShardingPlan::new(
            Vec::new(),
            task.tables().to_vec(),
            (0..task.num_tables()).map(|i| i % 2).collect(),
            2,
        )
        .unwrap()
    }

    fn provenance() -> PlanProvenance {
        PlanProvenance {
            source: PlanSource::Primary {
                algorithm: "test".into(),
            },
            events: Vec::new(),
            total_retries: 0,
            total_backoff_ms: 0,
            replan: None,
            failover: None,
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nshard_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn adoption_is_versioned_and_idempotent() {
        let store = PlanStore::in_memory();
        let t = task();
        let p = plan(&t);
        let a = store
            .adopt("aaaa", t.clone(), p.clone(), provenance(), 1.0, false)
            .unwrap();
        let b = store
            .adopt("bbbb", t.clone(), p.clone(), provenance(), 2.0, false)
            .unwrap();
        assert_eq!(a.version, 1);
        assert_eq!(b.version, 2);
        // Re-adopting an existing id returns the original record.
        let a2 = store.adopt("aaaa", t, p, provenance(), 99.0, true).unwrap();
        assert_eq!(a2, a);
        assert_eq!(store.len(), 2);
        assert_eq!(store.latest().unwrap().id, "bbbb");
        assert_eq!(store.ids(), vec!["aaaa".to_string(), "bbbb".to_string()]);
    }

    #[test]
    fn disk_store_restarts_warm() {
        let dir = tmp("warm");
        let t = task();
        let p = plan(&t);
        {
            let store = PlanStore::open(&dir).unwrap();
            store
                .adopt("p1", t.clone(), p.clone(), provenance(), 1.5, false)
                .unwrap();
            store
                .adopt("p2", t.clone(), p.clone(), provenance(), 2.5, true)
                .unwrap();
        }
        // A fresh process opens the same directory and sees everything.
        let reopened = PlanStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.latest().unwrap().id, "p2");
        assert_eq!(reopened.get("p1").unwrap().predicted_ms, 1.5);
        // Versions continue from where they left off.
        let third = reopened
            .adopt("p3", t, p, provenance(), 3.5, false)
            .unwrap();
        assert_eq!(third.version, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_plan_file_is_quarantined_not_fatal() {
        let dir = tmp("torn");
        let t = task();
        let p = plan(&t);
        {
            let store = PlanStore::open(&dir).unwrap();
            store
                .adopt("good", t.clone(), p.clone(), provenance(), 1.0, false)
                .unwrap();
            store
                .adopt("torn", t.clone(), p.clone(), provenance(), 2.0, false)
                .unwrap();
        }
        // Simulate a crash mid-persist: the file stops halfway through.
        let victim = dir.join("plans").join("torn.json");
        let full = std::fs::read_to_string(&victim).unwrap();
        std::fs::write(&victim, &full[..full.len() / 2]).unwrap();

        let reopened = PlanStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1, "the intact plan survives");
        assert!(reopened.get("good").is_some());
        assert!(reopened.get("torn").is_none());
        assert_eq!(reopened.quarantined(), 1);
        assert!(!victim.exists(), "damaged file moved aside");
        assert!(dir.join("plans").join("torn.json.quarantined").exists());
        // A third open sees a clean directory: quarantine is sticky.
        let again = PlanStore::open(&dir).unwrap();
        assert_eq!(again.quarantined(), 0);
        assert_eq!(again.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_is_caught_by_the_checksum() {
        let dir = tmp("flip");
        let t = task();
        let p = plan(&t);
        {
            let store = PlanStore::open(&dir).unwrap();
            store.adopt("flip", t, p, provenance(), 1.0, false).unwrap();
        }
        let victim = dir.join("plans").join("flip.json");
        // Corrupt the payload without breaking the JSON shape: the
        // checksum, not the parser, must catch this.
        let full = std::fs::read_to_string(&victim).unwrap();
        let tampered = full.replacen("\"degraded\":false", "\"degraded\":true ", 1);
        assert_ne!(full, tampered, "fixture must contain the degraded flag");
        std::fs::write(&victim, tampered).unwrap();
        let reopened = PlanStore::open(&dir).unwrap();
        assert_eq!(reopened.quarantined(), 1);
        assert!(reopened.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_unframed_files_still_load() {
        let dir = tmp("legacy");
        let t = task();
        let p = plan(&t);
        {
            let store = PlanStore::open(&dir).unwrap();
            store.adopt("old", t, p, provenance(), 4.5, false).unwrap();
        }
        // Strip the checksum line, leaving the bare envelope a
        // pre-checksum build would have written.
        let path = dir.join("plans").join("old.json");
        let framed = std::fs::read_to_string(&path).unwrap();
        let bare = framed.split_once('\n').unwrap().1;
        std::fs::write(&path, bare).unwrap();
        let reopened = PlanStore::open(&dir).unwrap();
        assert_eq!(reopened.quarantined(), 0);
        assert_eq!(reopened.get("old").unwrap().predicted_ms, 4.5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_model_is_a_typed_error() {
        let dir = tmp("models");
        let store = ModelStore::open(&dir).unwrap();
        assert!(store.list().is_empty());
        match store.load("nope") {
            Err(StoreError::Checkpoint(CheckpointError::Io { .. })) => {}
            other => panic!("expected typed I/O checkpoint error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
