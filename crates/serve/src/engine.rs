//! The planning engine behind the daemon's endpoints.
//!
//! One [`PlanningEngine`] is shared (behind an `Arc`) by every worker
//! thread. It owns:
//!
//! * the **full chain** — NeuroShard primary with a `SizeGreedy` fallback
//!   and the size-balanced last resort, via [`FallbackChain`];
//! * the **degraded chain** — greedy primaries only, used when a request's
//!   remaining deadline budget is too small for a beam search, so a
//!   deadline-pressed request degrades to a fast plan instead of erroring;
//! * the **incremental planner** — warm-started replans around a stored
//!   incumbent for `POST /v1/replan`.
//!
//! Everything downstream is deterministic (order-preserving work pools,
//! serial batched scoring), so identical requests produce **bit-identical
//! plans at any concurrency** — the serving layer adds no entropy: plan
//! ids are content-addressed hashes of the task + plan JSON, and no
//! timestamps enter response bodies.

use std::sync::{Arc, RwLock};

use nshard_baselines::{DimGreedy, SizeGreedy};
use nshard_core::{
    migration_bytes, FallbackChain, NeuroShard, NeuroShardConfig, PlanError, PlanProvenance,
    PlanSource, ResilientError, ShardingAlgorithm, ShardingPlan,
};
use nshard_cost::{CacheStats, CostModelBundle};
use nshard_data::ShardingTask;
use nshard_online::{IncrementalConfig, IncrementalPlanner};

/// A [`ShardingAlgorithm`] view of a shared [`NeuroShard`].
///
/// The chain owns its primary as a `Box<dyn ShardingAlgorithm>`, but the
/// engine also needs the sharder afterwards (its simulator prices plans
/// and exposes cache statistics for `/metrics`), so the chain gets this
/// forwarding wrapper around the engine's `Arc`.
struct SharedAlgo(Arc<NeuroShard>);

impl ShardingAlgorithm for SharedAlgo {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn shard(&self, task: &ShardingTask) -> Result<ShardingPlan, PlanError> {
        self.0.shard(task)
    }
}

/// One planned (or replanned) task, ready to store and serialize.
#[derive(Debug, Clone)]
pub struct PlanOutput {
    /// Content-addressed plan id (16 hex chars over task + plan JSON).
    pub id: String,
    /// The accepted plan.
    pub plan: ShardingPlan,
    /// How the chain arrived at it.
    pub provenance: PlanProvenance,
    /// Predicted embedding cost under the cost models, ms.
    pub predicted_ms: f64,
    /// `true` when the serving layer routed this request through the
    /// degraded chain (deadline pressure) or the chain itself downgraded.
    pub degraded: bool,
}

/// A replan: a [`PlanOutput`] plus migration accounting.
#[derive(Debug, Clone)]
pub struct ReplanOutput {
    /// The plan and its provenance.
    pub output: PlanOutput,
    /// Bytes that must move from the incumbent to adopt the new plan.
    pub migration_bytes: u64,
    /// `true` when the warm-started incremental planner produced the plan;
    /// `false` when it could not (e.g. the incumbent no longer rebases
    /// onto the drifted task) and a full search ran instead.
    pub incremental: bool,
    /// Candidate plans scored (incremental path only; `0` for full).
    pub evaluated_plans: usize,
}

/// Everything derived from one cost-model bundle: the sharder, both
/// fallback chains, the incremental planner, and the monotonically
/// increasing model version. Swapped atomically as a unit on promotion,
/// which also replaces the simulator — and with it every prediction and
/// encoding cache, so a promoted model can never serve a predecessor's
/// cached predictions.
struct EngineCore {
    neuro: Arc<NeuroShard>,
    full: FallbackChain,
    degraded: FallbackChain,
    incremental: IncrementalPlanner,
    version: u64,
}

/// The shared planning engine. See the [module documentation](self).
pub struct PlanningEngine {
    core: RwLock<Arc<EngineCore>>,
    search: NeuroShardConfig,
    incremental_config: IncrementalConfig,
    seed: u64,
}

impl PlanningEngine {
    /// Builds the engine from a pre-trained bundle and search knobs.
    ///
    /// `threads = 0` in `search` resolves through the single
    /// [`nshard_core::pool::THREADS_ENV`] path, so the daemon honors
    /// `NSHARD_THREADS` exactly like the offline binaries. The initial
    /// model version is `1`.
    pub fn new(
        bundle: CostModelBundle,
        search: NeuroShardConfig,
        incremental: IncrementalConfig,
        seed: u64,
    ) -> Self {
        let mut incremental = incremental;
        // Mirror the search's row-wise setting on the incremental path —
        // a disabled `use_row_wise` disables row splits everywhere.
        incremental.row_wise = search.use_row_wise;
        let core = Arc::new(Self::build_core(bundle, search, incremental, seed, 1));
        Self {
            core: RwLock::new(core),
            search,
            incremental_config: incremental,
            seed,
        }
    }

    fn build_core(
        bundle: CostModelBundle,
        search: NeuroShardConfig,
        incremental: IncrementalConfig,
        seed: u64,
        version: u64,
    ) -> EngineCore {
        let neuro = Arc::new(NeuroShard::new(bundle, search));
        let full = FallbackChain::new(Box::new(SharedAlgo(Arc::clone(&neuro))))
            .with_fallback(Box::new(SizeGreedy))
            .with_seed(seed)
            .with_threads(search.threads);
        let degraded = FallbackChain::new(Box::new(SizeGreedy))
            .with_fallback(Box::new(DimGreedy))
            .with_seed(seed)
            .with_threads(search.threads);
        EngineCore {
            neuro,
            full,
            degraded,
            incremental: IncrementalPlanner::new(incremental),
            version,
        }
    }

    /// The current core; cloned out of the lock so in-flight requests keep
    /// planning against the model generation they started with even if a
    /// promotion lands mid-request.
    fn current(&self) -> Arc<EngineCore> {
        self.core.read().expect("engine core lock poisoned").clone()
    }

    /// Atomically swaps in a new cost-model bundle, rebuilding the
    /// sharder, both chains, and the incremental planner around it, and
    /// returns the new model version. The fresh simulator starts with
    /// empty prediction/encoding caches, so no stale predictions survive
    /// the promotion.
    pub fn swap_bundle(&self, bundle: CostModelBundle) -> u64 {
        let mut guard = self.core.write().expect("engine core lock poisoned");
        let version = guard.version + 1;
        *guard = Arc::new(Self::build_core(
            bundle,
            self.search,
            self.incremental_config,
            self.seed,
            version,
        ));
        version
    }

    /// The active model version (starts at 1, +1 per
    /// [`PlanningEngine::swap_bundle`]).
    pub fn model_version(&self) -> u64 {
        self.current().version
    }

    /// Cumulative prediction-cache statistics of the **active** model
    /// generation, for `/metrics` (a swap resets them with the caches).
    pub fn cache_stats(&self) -> CacheStats {
        self.current().neuro.simulator().cache().stats()
    }

    /// Plans `task` from scratch. `degrade` routes through the greedy
    /// chain (deadline pressure); otherwise the full NeuroShard chain
    /// runs.
    ///
    /// # Errors
    ///
    /// [`ResilientError`] when every stage of the chain failed (the task
    /// is infeasible even size-balanced); carries full provenance.
    pub fn plan(&self, task: &ShardingTask, degrade: bool) -> Result<PlanOutput, ResilientError> {
        let core = self.current();
        let chain = if degrade { &core.degraded } else { &core.full };
        let outcome = chain.shard_with_provenance(task)?;
        Ok(finish(
            &core,
            task,
            outcome.plan,
            outcome.provenance,
            degrade,
        ))
    }

    /// Replans `task` warm-started from `incumbent`. Falls back to a full
    /// search when the incumbent cannot be rebased onto the drifted task;
    /// `degrade` skips the incremental path entirely (a deadline-pressed
    /// replan takes the greedy chain, charged with full migration).
    ///
    /// # Errors
    ///
    /// [`ResilientError`] when the full-search fallback also failed.
    pub fn replan(
        &self,
        task: &ShardingTask,
        incumbent: &ShardingPlan,
        degrade: bool,
    ) -> Result<ReplanOutput, ResilientError> {
        let core = self.current();
        if !degrade {
            if let Ok(out) = core
                .incremental
                .replan(core.neuro.simulator(), task, incumbent)
            {
                let provenance = PlanProvenance {
                    source: PlanSource::Primary {
                        algorithm: "incremental_planner".into(),
                    },
                    events: Vec::new(),
                    total_retries: 0,
                    total_backoff_ms: 0,
                    replan: None,
                    failover: None,
                };
                let migration = out.delta.migration_bytes;
                let evaluated = out.evaluated_plans;
                let output = finish(&core, task, out.plan, provenance, false);
                return Ok(ReplanOutput {
                    output,
                    migration_bytes: migration,
                    incremental: true,
                    evaluated_plans: evaluated,
                });
            }
        }
        // Full (or degraded) search; migration is charged against the
        // rebased incumbent when it still rebases, else everything moves.
        let output = self.plan(task, degrade)?;
        let moved = incumbent
            .rebase(task)
            .map(|base| migration_bytes(&base, &output.plan))
            .unwrap_or_else(|_| task.tables().iter().map(|t| t.memory_bytes()).sum());
        Ok(ReplanOutput {
            output,
            migration_bytes: moved,
            incremental: false,
            evaluated_plans: 0,
        })
    }
}

/// Prices, ids, and packages an accepted plan against one core (so the
/// whole request is served by a single model generation).
fn finish(
    core: &EngineCore,
    task: &ShardingTask,
    plan: ShardingPlan,
    provenance: PlanProvenance,
    degrade: bool,
) -> PlanOutput {
    let predicted_ms = core
        .neuro
        .simulator()
        .estimate_plan(&plan.device_profiles(task.batch_size()))
        .total_ms();
    let id = plan_id(task, &plan);
    let degraded = degrade || provenance.is_degraded();
    PlanOutput {
        id,
        plan,
        provenance,
        predicted_ms,
        degraded,
    }
}

/// Content-addressed plan id: FNV-1a over the task and plan JSON, 16 hex
/// chars. Identical (task, plan) pairs — the only thing a deterministic
/// engine can produce for identical requests — get identical ids, which
/// makes store adoption idempotent and responses bit-identical.
pub fn plan_id(task: &ShardingTask, plan: &ShardingPlan) -> String {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(serde_json::to_string(task).unwrap_or_default().as_bytes());
    eat(b"|");
    eat(serde_json::to_string(plan).unwrap_or_default().as_bytes());
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_cost::{CollectConfig, TrainSettings};
    use nshard_data::{TableConfig, TableId, TablePool};

    fn engine() -> PlanningEngine {
        let pool = TablePool::synthetic_dlrm(40, 3);
        let bundle = CostModelBundle::pretrain(
            &pool,
            2,
            &CollectConfig::smoke(),
            &TrainSettings::smoke(),
            7,
        );
        PlanningEngine::new(
            bundle,
            NeuroShardConfig::smoke(),
            IncrementalConfig::default(),
            7,
        )
    }

    fn task() -> ShardingTask {
        let tables: Vec<TableConfig> = (0..8)
            .map(|i| TableConfig::new(TableId(i), 16 + 16 * (i % 2), 1 << 14, 8.0, 1.05))
            .collect();
        ShardingTask::new(tables, 2, 1 << 30, 1024)
    }

    #[test]
    fn planning_is_deterministic_and_content_addressed() {
        let eng = engine();
        let a = eng.plan(&task(), false).unwrap();
        let b = eng.plan(&task(), false).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.id, b.id);
        assert!(!a.degraded);
        assert!(a.predicted_ms.is_finite() && a.predicted_ms > 0.0);
    }

    #[test]
    fn degraded_path_is_marked_and_still_valid() {
        let eng = engine();
        let t = task();
        let out = eng.plan(&t, true).unwrap();
        assert!(out.degraded);
        assert!(out.plan.validate(&t).is_ok());
        // Different route may mean a different plan — and a different id.
        let full = eng.plan(&t, false).unwrap();
        if full.plan != out.plan {
            assert_ne!(full.id, out.id);
        }
    }

    #[test]
    fn replan_warm_starts_from_the_incumbent() {
        let eng = engine();
        let t = task();
        let incumbent = eng.plan(&t, false).unwrap();
        // Same task: nothing to move.
        let re = eng.replan(&t, &incumbent.plan, false).unwrap();
        assert!(re.incremental);
        assert_eq!(re.migration_bytes, 0);
        assert!(re.output.plan.validate(&t).is_ok());
    }

    #[test]
    fn replan_falls_back_to_full_search_when_rebase_fails() {
        let eng = engine();
        let t = task();
        let incumbent = eng.plan(&t, false).unwrap();
        // A task with a different table count cannot host the incumbent.
        let tables: Vec<TableConfig> = (0..5)
            .map(|i| TableConfig::new(TableId(100 + i), 32, 1 << 14, 8.0, 1.05))
            .collect();
        let drifted = ShardingTask::new(tables, 2, 1 << 30, 1024);
        let re = eng.replan(&drifted, &incumbent.plan, false).unwrap();
        assert!(!re.incremental);
        assert!(re.migration_bytes > 0);
        assert!(re.output.plan.validate(&drifted).is_ok());
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlanningEngine>();
    }

    #[test]
    fn swap_bundle_bumps_version_and_clears_caches() {
        let eng = engine();
        assert_eq!(eng.model_version(), 1);
        let t = task();
        let first = eng.plan(&t, false).unwrap();
        assert!(
            eng.cache_stats().misses > 0,
            "planning must touch the prediction cache"
        );

        // Swap in a differently-seeded (differently-initialized) bundle.
        let pool = TablePool::synthetic_dlrm(40, 3);
        let other = CostModelBundle::pretrain(
            &pool,
            2,
            &CollectConfig::smoke(),
            &TrainSettings::smoke(),
            99,
        );
        assert_eq!(eng.swap_bundle(other), 2);
        assert_eq!(eng.model_version(), 2);
        let stats = eng.cache_stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 0),
            "a promoted model must start with empty caches"
        );

        // The new generation prices plans with the new models.
        let second = eng.plan(&t, false).unwrap();
        assert!(second.plan.validate(&t).is_ok());
        assert_ne!(
            first.predicted_ms, second.predicted_ms,
            "different bundles should price the workload differently"
        );
    }
}
