//! The planning engine behind the daemon's endpoints.
//!
//! One [`PlanningEngine`] is shared (behind an `Arc`) by every worker
//! thread. It owns:
//!
//! * the **full chain** — NeuroShard primary with a `SizeGreedy` fallback
//!   and the size-balanced last resort, via [`FallbackChain`];
//! * the **degraded chain** — greedy primaries only, used when a request's
//!   remaining deadline budget is too small for a beam search, so a
//!   deadline-pressed request degrades to a fast plan instead of erroring;
//! * the **incremental planner** — warm-started replans around a stored
//!   incumbent for `POST /v1/replan`.
//!
//! Everything downstream is deterministic (order-preserving work pools,
//! serial batched scoring), so identical requests produce **bit-identical
//! plans at any concurrency** — the serving layer adds no entropy: plan
//! ids are content-addressed hashes of the task + plan JSON, and no
//! timestamps enter response bodies.

use std::sync::Arc;

use nshard_baselines::{DimGreedy, SizeGreedy};
use nshard_core::{
    migration_bytes, FallbackChain, NeuroShard, NeuroShardConfig, PlanError, PlanProvenance,
    PlanSource, ResilientError, ShardingAlgorithm, ShardingPlan,
};
use nshard_cost::{CacheStats, CostModelBundle, CostSimulator};
use nshard_data::ShardingTask;
use nshard_online::{IncrementalConfig, IncrementalPlanner};

/// A [`ShardingAlgorithm`] view of a shared [`NeuroShard`].
///
/// The chain owns its primary as a `Box<dyn ShardingAlgorithm>`, but the
/// engine also needs the sharder afterwards (its simulator prices plans
/// and exposes cache statistics for `/metrics`), so the chain gets this
/// forwarding wrapper around the engine's `Arc`.
struct SharedAlgo(Arc<NeuroShard>);

impl ShardingAlgorithm for SharedAlgo {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn shard(&self, task: &ShardingTask) -> Result<ShardingPlan, PlanError> {
        self.0.shard(task)
    }
}

/// One planned (or replanned) task, ready to store and serialize.
#[derive(Debug, Clone)]
pub struct PlanOutput {
    /// Content-addressed plan id (16 hex chars over task + plan JSON).
    pub id: String,
    /// The accepted plan.
    pub plan: ShardingPlan,
    /// How the chain arrived at it.
    pub provenance: PlanProvenance,
    /// Predicted embedding cost under the cost models, ms.
    pub predicted_ms: f64,
    /// `true` when the serving layer routed this request through the
    /// degraded chain (deadline pressure) or the chain itself downgraded.
    pub degraded: bool,
}

/// A replan: a [`PlanOutput`] plus migration accounting.
#[derive(Debug, Clone)]
pub struct ReplanOutput {
    /// The plan and its provenance.
    pub output: PlanOutput,
    /// Bytes that must move from the incumbent to adopt the new plan.
    pub migration_bytes: u64,
    /// `true` when the warm-started incremental planner produced the plan;
    /// `false` when it could not (e.g. the incumbent no longer rebases
    /// onto the drifted task) and a full search ran instead.
    pub incremental: bool,
    /// Candidate plans scored (incremental path only; `0` for full).
    pub evaluated_plans: usize,
}

/// The shared planning engine. See the [module documentation](self).
pub struct PlanningEngine {
    neuro: Arc<NeuroShard>,
    full: FallbackChain,
    degraded: FallbackChain,
    incremental: IncrementalPlanner,
}

impl PlanningEngine {
    /// Builds the engine from a pre-trained bundle and search knobs.
    ///
    /// `threads = 0` in `search` resolves through the single
    /// [`nshard_core::pool::THREADS_ENV`] path, so the daemon honors
    /// `NSHARD_THREADS` exactly like the offline binaries.
    pub fn new(
        bundle: CostModelBundle,
        search: NeuroShardConfig,
        incremental: IncrementalConfig,
        seed: u64,
    ) -> Self {
        let neuro = Arc::new(NeuroShard::new(bundle, search));
        let full = FallbackChain::new(Box::new(SharedAlgo(Arc::clone(&neuro))))
            .with_fallback(Box::new(SizeGreedy))
            .with_seed(seed)
            .with_threads(search.threads);
        let degraded = FallbackChain::new(Box::new(SizeGreedy))
            .with_fallback(Box::new(DimGreedy))
            .with_seed(seed)
            .with_threads(search.threads);
        Self {
            neuro,
            full,
            degraded,
            incremental: IncrementalPlanner::new(incremental),
        }
    }

    /// The cost simulator pricing plans (and backing the search).
    pub fn simulator(&self) -> &CostSimulator {
        self.neuro.simulator()
    }

    /// Cumulative prediction-cache statistics, for `/metrics`.
    pub fn cache_stats(&self) -> CacheStats {
        self.neuro.simulator().cache().stats()
    }

    /// Plans `task` from scratch. `degrade` routes through the greedy
    /// chain (deadline pressure); otherwise the full NeuroShard chain
    /// runs.
    ///
    /// # Errors
    ///
    /// [`ResilientError`] when every stage of the chain failed (the task
    /// is infeasible even size-balanced); carries full provenance.
    pub fn plan(&self, task: &ShardingTask, degrade: bool) -> Result<PlanOutput, ResilientError> {
        let chain = if degrade { &self.degraded } else { &self.full };
        let outcome = chain.shard_with_provenance(task)?;
        Ok(self.finish(task, outcome.plan, outcome.provenance, degrade))
    }

    /// Replans `task` warm-started from `incumbent`. Falls back to a full
    /// search when the incumbent cannot be rebased onto the drifted task;
    /// `degrade` skips the incremental path entirely (a deadline-pressed
    /// replan takes the greedy chain, charged with full migration).
    ///
    /// # Errors
    ///
    /// [`ResilientError`] when the full-search fallback also failed.
    pub fn replan(
        &self,
        task: &ShardingTask,
        incumbent: &ShardingPlan,
        degrade: bool,
    ) -> Result<ReplanOutput, ResilientError> {
        if !degrade {
            if let Ok(out) = self.incremental.replan(self.simulator(), task, incumbent) {
                let provenance = PlanProvenance {
                    source: PlanSource::Primary {
                        algorithm: "incremental_planner".into(),
                    },
                    events: Vec::new(),
                    total_retries: 0,
                    total_backoff_ms: 0,
                    replan: None,
                    failover: None,
                };
                let migration = out.delta.migration_bytes;
                let evaluated = out.evaluated_plans;
                let output = self.finish(task, out.plan, provenance, false);
                return Ok(ReplanOutput {
                    output,
                    migration_bytes: migration,
                    incremental: true,
                    evaluated_plans: evaluated,
                });
            }
        }
        // Full (or degraded) search; migration is charged against the
        // rebased incumbent when it still rebases, else everything moves.
        let output = self.plan(task, degrade)?;
        let moved = incumbent
            .rebase(task)
            .map(|base| migration_bytes(&base, &output.plan))
            .unwrap_or_else(|_| task.tables().iter().map(|t| t.memory_bytes()).sum());
        Ok(ReplanOutput {
            output,
            migration_bytes: moved,
            incremental: false,
            evaluated_plans: 0,
        })
    }

    /// Prices, ids, and packages an accepted plan.
    fn finish(
        &self,
        task: &ShardingTask,
        plan: ShardingPlan,
        provenance: PlanProvenance,
        degrade: bool,
    ) -> PlanOutput {
        let predicted_ms = self
            .simulator()
            .estimate_plan(&plan.device_profiles(task.batch_size()))
            .total_ms();
        let id = plan_id(task, &plan);
        let degraded = degrade || provenance.is_degraded();
        PlanOutput {
            id,
            plan,
            provenance,
            predicted_ms,
            degraded,
        }
    }
}

/// Content-addressed plan id: FNV-1a over the task and plan JSON, 16 hex
/// chars. Identical (task, plan) pairs — the only thing a deterministic
/// engine can produce for identical requests — get identical ids, which
/// makes store adoption idempotent and responses bit-identical.
pub fn plan_id(task: &ShardingTask, plan: &ShardingPlan) -> String {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(serde_json::to_string(task).unwrap_or_default().as_bytes());
    eat(b"|");
    eat(serde_json::to_string(plan).unwrap_or_default().as_bytes());
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_cost::{CollectConfig, TrainSettings};
    use nshard_data::{TableConfig, TableId, TablePool};

    fn engine() -> PlanningEngine {
        let pool = TablePool::synthetic_dlrm(40, 3);
        let bundle = CostModelBundle::pretrain(
            &pool,
            2,
            &CollectConfig::smoke(),
            &TrainSettings::smoke(),
            7,
        );
        PlanningEngine::new(
            bundle,
            NeuroShardConfig::smoke(),
            IncrementalConfig::default(),
            7,
        )
    }

    fn task() -> ShardingTask {
        let tables: Vec<TableConfig> = (0..8)
            .map(|i| TableConfig::new(TableId(i), 16 + 16 * (i % 2), 1 << 14, 8.0, 1.05))
            .collect();
        ShardingTask::new(tables, 2, 1 << 30, 1024)
    }

    #[test]
    fn planning_is_deterministic_and_content_addressed() {
        let eng = engine();
        let a = eng.plan(&task(), false).unwrap();
        let b = eng.plan(&task(), false).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.id, b.id);
        assert!(!a.degraded);
        assert!(a.predicted_ms.is_finite() && a.predicted_ms > 0.0);
    }

    #[test]
    fn degraded_path_is_marked_and_still_valid() {
        let eng = engine();
        let t = task();
        let out = eng.plan(&t, true).unwrap();
        assert!(out.degraded);
        assert!(out.plan.validate(&t).is_ok());
        // Different route may mean a different plan — and a different id.
        let full = eng.plan(&t, false).unwrap();
        if full.plan != out.plan {
            assert_ne!(full.id, out.id);
        }
    }

    #[test]
    fn replan_warm_starts_from_the_incumbent() {
        let eng = engine();
        let t = task();
        let incumbent = eng.plan(&t, false).unwrap();
        // Same task: nothing to move.
        let re = eng.replan(&t, &incumbent.plan, false).unwrap();
        assert!(re.incremental);
        assert_eq!(re.migration_bytes, 0);
        assert!(re.output.plan.validate(&t).is_ok());
    }

    #[test]
    fn replan_falls_back_to_full_search_when_rebase_fails() {
        let eng = engine();
        let t = task();
        let incumbent = eng.plan(&t, false).unwrap();
        // A task with a different table count cannot host the incumbent.
        let tables: Vec<TableConfig> = (0..5)
            .map(|i| TableConfig::new(TableId(100 + i), 32, 1 << 14, 8.0, 1.05))
            .collect();
        let drifted = ShardingTask::new(tables, 2, 1 << 30, 1024);
        let re = eng.replan(&drifted, &incumbent.plan, false).unwrap();
        assert!(!re.incremental);
        assert!(re.migration_bytes > 0);
        assert!(re.output.plan.validate(&drifted).is_ok());
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlanningEngine>();
    }
}
