//! # nshard-serve — sharding as a service
//!
//! A long-running, dependency-free HTTP/1.1 JSON daemon around the
//! NeuroShard planner: the deployment story for the paper's "pre-train
//! once, search per task" workflow. Pre-trained cost models load at
//! startup (optionally from a [`store::ModelStore`] checkpoint) and every
//! request is an online search.
//!
//! ## Endpoints
//!
//! | Route | Effect |
//! |---|---|
//! | `POST /v1/plan` | Plan a task from scratch through the full [`nshard_core::FallbackChain`] |
//! | `POST /v1/replan` | Warm-started incremental replan around a stored incumbent |
//! | `POST /v1/observations` | Report ground-truth costs for continual learning |
//! | `GET /v1/plans/{id}` | Fetch a stored plan with provenance |
//! | `GET /health` | Liveness + store/queue facts + replication role |
//! | `GET /metrics` | Prometheus exposition ([`metrics`]) |
//! | `GET /v1/repl/status` | Replication role, applied sequence, staleness |
//! | `GET /v1/repl/log/{from}` | Sequenced op log for tailing followers ([`repl`]) |
//! | `GET /v1/repl/snapshot` | Full KV snapshot for cold/lagging catch-up |
//!
//! ## Replication
//!
//! N daemons form a serve tier sharing one logical plan store: a leader
//! adopts plans through sequence-checked conditional upserts in the
//! [`kv::PlanKv`], followers tail its op log and promote themselves on
//! leader death ([`repl`] has the full story).
//!
//! ## Admission control
//!
//! The accept loop feeds a **bounded** queue drained by a worker pool; a
//! full queue sheds load with `429 Too Many Requests` instead of building
//! unbounded latency. Every job carries a deadline: expired jobs answer
//! `503` without searching, and deadline-pressed jobs degrade to the
//! greedy chain — a fast plan beats no plan, the same philosophy as the
//! fault-driven [`nshard_core::FallbackChain`].
//!
//! ## Determinism
//!
//! Identical request bodies produce **byte-identical** `200` responses at
//! any concurrency: the engine is deterministic at any thread count, plan
//! ids are content-addressed, store adoption is idempotent by id, the
//! vendored serializer has a fixed field order, and response bodies carry
//! no timestamps. The worker-pool size (like every other parallel knob in
//! the workspace) resolves through [`nshard_core::resolve_threads`], so
//! `NSHARD_THREADS` ([`nshard_core::pool::THREADS_ENV`]) is the single
//! thread-count control.

// `deny` (not `forbid`) so the one syscall-wrapper module can opt back
// in: `net::sys` carries a scoped `#![allow(unsafe_code)]` for its raw
// epoll/poll FFI, with a safety comment on every unsafe block. All other
// modules remain unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod clock;
pub mod engine;
pub mod http;
pub mod kv;
pub mod metrics;
pub mod net;
pub mod repl;
pub mod server;
pub mod store;

pub use api::{
    source_label, ErrorBody, HealthResponse, ObservationWire, ObservationsAck, ObservationsRequest,
    PlanRequest, PlanResponse, ReplStatus, ReplanRequest, ReplanResponse,
};
pub use clock::{Clock, ManualClock, WallClock};
pub use engine::{plan_id, PlanOutput, PlanningEngine, ReplanOutput};
pub use http::{http_call, HttpRequest, HttpResponse, KeepAliveClient};
pub use kv::{KvError, KvSnapshot, LogFetch, LogOp, MatchSeq, PlanKv, SeqEntry, SnapshotEntry};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use net::{ConnConfig, IoMode};
pub use repl::{HttpTransport, PollOutcome, ReplError, ReplTransport, Replicator, Role, RoleCell};
pub use server::{ReplicaConfig, Routed, ServeConfig, Server, Service, MODEL_KEY};
pub use store::{ModelStore, PlanStore, StoreError, StoredPlan};
