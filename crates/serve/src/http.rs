//! A minimal, dependency-free HTTP/1.1 subset: exactly what the daemon
//! needs and nothing more.
//!
//! Requests are parsed from a stream (request line, headers, optional
//! `Content-Length` body) and responses are written with
//! `Connection: close` — one request per connection keeps the server
//! simple and the tests honest. A tiny blocking client ([`http_call`])
//! lives here too, shared by the integration tests, the load-generator
//! bench, and the demo's self-check.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on request bodies; larger requests get `413`.
pub const MAX_BODY_BYTES: usize = 8 << 20;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, upper-case (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, e.g. `/v1/plan` (query strings are not supported).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpParseError {
    /// The stream closed or errored mid-request.
    Io(std::io::Error),
    /// The request line or headers were not valid HTTP/1.1.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
    },
}

impl std::fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpParseError::Io(e) => write!(f, "I/O while reading request: {e}"),
            HttpParseError::Malformed(reason) => write!(f, "malformed request: {reason}"),
            HttpParseError::BodyTooLarge { declared } => {
                write!(f, "body of {declared} bytes exceeds {MAX_BODY_BYTES}")
            }
        }
    }
}

impl From<std::io::Error> for HttpParseError {
    fn from(e: std::io::Error) -> Self {
        HttpParseError::Io(e)
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// [`HttpParseError`] on stream errors, malformed framing, or an
/// oversized declared body.
pub fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, HttpParseError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpParseError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| HttpParseError::Malformed("request line has no path".into()))?
        .to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 {
            return Err(HttpParseError::Malformed(
                "connection closed in headers".into(),
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpParseError::Malformed("bad Content-Length".into()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpParseError::BodyTooLarge {
            declared: content_length,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(HttpRequest { method, path, body })
}

/// A response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (200, 404, 429, ...).
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Optional `Retry-After` seconds (load-shedding responses).
    pub retry_after_s: Option<u32>,
    /// Extra response headers (e.g. `X-Nshard-Stale` on degraded-mode
    /// reads after a failover).
    pub headers: Vec<(String, String)>,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after_s: None,
            headers: Vec::new(),
        }
    }

    /// A plain-text response (Prometheus exposition, health).
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into_bytes(),
            retry_after_s: None,
            headers: Vec::new(),
        }
    }

    /// Attaches a `Retry-After` header (builder-style).
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u32) -> Self {
        self.retry_after_s = Some(seconds);
        self
    }

    /// Attaches an extra response header (builder-style).
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The standard reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response (status line, headers, body) to `out`.
    ///
    /// # Errors
    ///
    /// Propagates write errors from `out`.
    pub fn write_to(&self, out: &mut impl Write) -> std::io::Result<()> {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        if let Some(seconds) = self.retry_after_s {
            write!(out, "Retry-After: {seconds}\r\n")?;
        }
        for (name, value) in &self.headers {
            write!(out, "{name}: {value}\r\n")?;
        }
        out.write_all(b"\r\n")?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

/// A blocking one-shot HTTP call: connect, send, read the full response.
/// Returns `(status, body)`.
///
/// # Errors
///
/// I/O errors connecting or reading; `InvalidData` when the response is
/// not parseable HTTP.
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let mut lines = text.splitn(2, "\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;
    let rest = lines.next().unwrap_or_default();
    let body = rest
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_round_trips_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/v1/plan");
            assert_eq!(req.body, b"{\"x\":1}");
            HttpResponse::json(200, "{\"ok\":true}".into())
                .write_to(&mut stream)
                .unwrap();
        });
        let (status, body) =
            http_call(&addr.to_string(), "POST", "/v1/plan", b"{\"x\":1}").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        handle.join().unwrap();
    }

    #[test]
    fn retry_after_header_is_emitted() {
        let resp = HttpResponse::json(429, "{}".into()).with_retry_after(1);
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn extra_headers_are_emitted() {
        let resp = HttpResponse::json(200, "{}".into()).with_header("X-Nshard-Stale", "true");
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Nshard-Stale: true\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn oversized_declared_body_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            matches!(
                read_request(&mut stream),
                Err(HttpParseError::BodyTooLarge { .. })
            )
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /v1/plan HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .unwrap();
        stream.flush().unwrap();
        assert!(handle.join().unwrap());
    }
}
