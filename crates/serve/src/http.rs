//! A minimal, dependency-free HTTP/1.1 subset: exactly what the daemon
//! needs and nothing more.
//!
//! Requests are parsed from a stream (request line, headers, optional
//! `Content-Length` body). The blocking reference path writes responses
//! with `Connection: close` — one request per connection keeps it simple
//! and the conformance tests honest — while the event-driven path
//! ([`crate::net`]) serializes the same bytes with `Connection:
//! keep-alive` via [`HttpResponse::to_bytes`]. Two blocking clients live
//! here too: the one-shot [`http_call`] and the connection-reusing
//! [`KeepAliveClient`], shared by the integration tests, the
//! load-generator benches, and the demos' self-checks.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on request bodies; larger requests get `413`.
pub const MAX_BODY_BYTES: usize = 8 << 20;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, upper-case (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, e.g. `/v1/plan` (query strings are not supported).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpParseError {
    /// The stream closed or errored mid-request.
    Io(std::io::Error),
    /// The request line or headers were not valid HTTP/1.1.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
    },
}

impl std::fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpParseError::Io(e) => write!(f, "I/O while reading request: {e}"),
            HttpParseError::Malformed(reason) => write!(f, "malformed request: {reason}"),
            HttpParseError::BodyTooLarge { declared } => {
                write!(f, "body of {declared} bytes exceeds {MAX_BODY_BYTES}")
            }
        }
    }
}

impl From<std::io::Error> for HttpParseError {
    fn from(e: std::io::Error) -> Self {
        HttpParseError::Io(e)
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// [`HttpParseError`] on stream errors, malformed framing, or an
/// oversized declared body.
pub fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, HttpParseError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpParseError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| HttpParseError::Malformed("request line has no path".into()))?
        .to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 {
            return Err(HttpParseError::Malformed(
                "connection closed in headers".into(),
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpParseError::Malformed("bad Content-Length".into()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpParseError::BodyTooLarge {
            declared: content_length,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(HttpRequest { method, path, body })
}

/// A response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (200, 404, 429, ...).
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Optional `Retry-After` seconds (load-shedding responses).
    pub retry_after_s: Option<u32>,
    /// Extra response headers (e.g. `X-Nshard-Stale` on degraded-mode
    /// reads after a failover).
    pub headers: Vec<(String, String)>,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after_s: None,
            headers: Vec::new(),
        }
    }

    /// A plain-text response (Prometheus exposition, health).
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into_bytes(),
            retry_after_s: None,
            headers: Vec::new(),
        }
    }

    /// Attaches a `Retry-After` header (builder-style).
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u32) -> Self {
        self.retry_after_s = Some(seconds);
        self
    }

    /// Attaches an extra response header (builder-style).
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The standard reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response to bytes. `keep_alive` selects the
    /// `Connection` header; everything else — header order included — is
    /// identical between the two values, so the blocking path
    /// ([`HttpResponse::write_to`], always `close`) and the event-driven
    /// path differ by exactly that one header value and nothing more.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
                self.status,
                self.reason(),
                self.content_type,
                self.body.len(),
                connection,
            )
            .as_bytes(),
        );
        if let Some(seconds) = self.retry_after_s {
            out.extend_from_slice(format!("Retry-After: {seconds}\r\n").as_bytes());
        }
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Serializes the response (status line, headers, body) to `out`
    /// with `Connection: close` — the blocking path's exact bytes.
    ///
    /// # Errors
    ///
    /// Propagates write errors from `out`.
    pub fn write_to(&self, out: &mut impl Write) -> std::io::Result<()> {
        out.write_all(&self.to_bytes(false))?;
        out.flush()
    }
}

/// A blocking one-shot HTTP call: connect, send, read the full response.
/// Returns `(status, body)`.
///
/// # Errors
///
/// I/O errors connecting or reading; `InvalidData` when the response is
/// not parseable HTTP.
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let mut lines = text.splitn(2, "\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;
    let rest = lines.next().unwrap_or_default();
    let body = rest
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// A blocking HTTP/1.1 client that keeps one connection open across
/// calls — the load-generation counterpart of the event loop's
/// keep-alive serving path (`bench_replay` and the replication tailer
/// use it to avoid a connect per request).
///
/// Responses are framed by `Content-Length`, so the client reads exactly
/// one response per call and leaves the connection ready for the next.
/// If the server closed the connection (or it was never opened), the
/// next call reconnects transparently.
pub struct KeepAliveClient {
    addr: String,
    stream: Option<BufReader<TcpStream>>,
    /// Calls that found the cached connection dead and reconnected.
    reconnects: u64,
}

impl KeepAliveClient {
    /// A client for `addr` (connects lazily on the first call).
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            stream: None,
            reconnects: 0,
        }
    }

    /// How many calls had to re-establish the connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Sends one request and reads one response. Returns
    /// `(status, body)`.
    ///
    /// # Errors
    ///
    /// I/O errors connecting, writing, or reading; `InvalidData` when
    /// the response is not parseable HTTP.
    pub fn call(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, String)> {
        if self.stream.is_none() {
            self.connect()?;
        }
        match self.try_call(method, path, body) {
            Ok(result) => Ok(result),
            Err(_) => {
                // The server may have closed an idle keep-alive
                // connection between calls; retry once on a fresh one.
                self.reconnects += 1;
                self.connect()?;
                self.try_call(method, path, body)
            }
        }
    }

    fn connect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true)?;
        self.stream = Some(BufReader::new(stream));
        Ok(())
    }

    fn try_call(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, String)> {
        let reader = self.stream.as_mut().expect("connected");
        {
            let stream = reader.get_mut();
            write!(
                stream,
                "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
                self.addr,
                body.len()
            )?;
            stream.write_all(body)?;
            stream.flush()?;
        }

        let mut status_line = String::new();
        if reader.read_line(&mut status_line)? == 0 {
            self.stream = None;
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before the status line",
            ));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line: {status_line:?}"),
                )
            })?;

        let mut content_length = 0usize;
        let mut server_closes = false;
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 {
                self.stream = None;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed in response headers",
                ));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "bad response Content-Length",
                        )
                    })?;
                } else if name.eq_ignore_ascii_case("connection")
                    && value.trim().eq_ignore_ascii_case("close")
                {
                    server_closes = true;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        if server_closes {
            self.stream = None;
        }
        Ok((status, String::from_utf8_lossy(&body).into_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_round_trips_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/v1/plan");
            assert_eq!(req.body, b"{\"x\":1}");
            HttpResponse::json(200, "{\"ok\":true}".into())
                .write_to(&mut stream)
                .unwrap();
        });
        let (status, body) =
            http_call(&addr.to_string(), "POST", "/v1/plan", b"{\"x\":1}").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        handle.join().unwrap();
    }

    #[test]
    fn retry_after_header_is_emitted() {
        let resp = HttpResponse::json(429, "{}".into()).with_retry_after(1);
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn extra_headers_are_emitted() {
        let resp = HttpResponse::json(200, "{}".into()).with_header("X-Nshard-Stale", "true");
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Nshard-Stale: true\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn to_bytes_differs_from_write_to_only_in_the_connection_header() {
        let resp = HttpResponse::json(200, "{\"ok\":true}".into())
            .with_retry_after(2)
            .with_header("X-Nshard-Stale", "true");
        let mut via_write_to = Vec::new();
        resp.write_to(&mut via_write_to).unwrap();
        assert_eq!(
            via_write_to,
            resp.to_bytes(false),
            "write_to and to_bytes(false) are the same bytes"
        );
        let keep = String::from_utf8(resp.to_bytes(true)).unwrap();
        let close = String::from_utf8(resp.to_bytes(false)).unwrap();
        assert_eq!(
            keep.replace("Connection: keep-alive", "Connection: close"),
            close
        );
    }

    #[test]
    fn keepalive_client_reuses_one_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // One accepted connection serves two requests.
            let (mut stream, _) = listener.accept().unwrap();
            for _ in 0..2 {
                let req = read_request(&mut stream).unwrap();
                let resp = HttpResponse::json(200, format!("{{\"path\":\"{}\"}}", req.path));
                stream.write_all(&resp.to_bytes(true)).unwrap();
            }
        });
        let mut client = KeepAliveClient::new(addr.to_string());
        let (status, body) = client.call("GET", "/a", b"").unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"path\":\"/a\"}"));
        let (status, body) = client.call("GET", "/b", b"").unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"path\":\"/b\"}"));
        assert_eq!(client.reconnects(), 0);
        handle.join().unwrap();
    }

    #[test]
    fn oversized_declared_body_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            matches!(
                read_request(&mut stream),
                Err(HttpParseError::BodyTooLarge { .. })
            )
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /v1/plan HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .unwrap();
        stream.flush().unwrap();
        assert!(handle.join().unwrap());
    }
}
