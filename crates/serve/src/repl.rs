//! Leader/follower replication of the plan control plane.
//!
//! A serve tier is N daemons sharing one logical plan/model store. One
//! node is the **leader**: it runs searches, adopts plans, and appends
//! every adoption to the sequenced op log of its [`PlanKv`]. The others
//! are **followers**: they poll the leader's `/v1/repl/log/{from}`
//! endpoint, apply the ops through the same sequence-gated
//! [`PlanKv::apply`] path, and materialize replicated plans into their
//! local [`crate::store::PlanStore`] — so every replica can answer
//! `GET /v1/plans/{id}` warm at all times. A cold or lagging follower
//! whose position predates the leader's retained log catches up from
//! `/v1/repl/snapshot` instead.
//!
//! **Failover.** The [`Replicator`] counts *consecutive* transport
//! failures; at `failure_threshold` it promotes its service to leader
//! ([`Role::Leader`]) — the caught-up store keeps serving reads and starts
//! accepting writes. If the follower had observed leader sequences it
//! never received, the promotion is **stale**: reads still serve (old
//! plans beat no plans, the fallback-chain philosophy applied to
//! replication) but responses are marked — `X-Nshard-Stale: true` on plan
//! fetches and `stale` in `/v1/repl/status` — and new plans carry a
//! failover [`nshard_core::FailoverAttribution`] in their provenance.
//!
//! **Determinism.** Reconnect pacing comes from the shared seeded
//! [`Backoff`] helper and is *recorded, not slept* — the chaos suite
//! drives every schedule with a manual clock and zero sleeps.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use nshard_core::pool::Backoff;

use crate::http::http_call;
use crate::kv::{KvSnapshot, LogFetch};
use crate::server::Service;

/// A node's role in the serve tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Tails the leader's log; rejects writes with `503 not_leader`.
    Follower,
    /// Mid-promotion (failure threshold reached, takeover in progress).
    Candidate,
    /// Accepts writes and serves the op log.
    Leader,
}

impl Role {
    /// Short stable label (`"leader"` / `"follower"` / `"candidate"`).
    pub fn label(&self) -> &'static str {
        match self {
            Role::Follower => "follower",
            Role::Candidate => "candidate",
            Role::Leader => "leader",
        }
    }

    /// Numeric gauge encoding: follower 0, candidate 1, leader 2.
    pub fn gauge_value(&self) -> u64 {
        match self {
            Role::Follower => 0,
            Role::Candidate => 1,
            Role::Leader => 2,
        }
    }
}

/// Lock-free cell holding a node's role and failover state.
pub struct RoleCell {
    role: AtomicU8,
    stale: AtomicBool,
    promoted: AtomicBool,
    promoted_at_seq: AtomicU64,
}

impl RoleCell {
    /// A cell starting in `role`.
    pub fn new(role: Role) -> Self {
        Self {
            role: AtomicU8::new(role.gauge_value() as u8),
            stale: AtomicBool::new(false),
            promoted: AtomicBool::new(false),
            promoted_at_seq: AtomicU64::new(0),
        }
    }

    /// The current role.
    pub fn role(&self) -> Role {
        match self.role.load(Ordering::SeqCst) {
            0 => Role::Follower,
            1 => Role::Candidate,
            _ => Role::Leader,
        }
    }

    /// Sets the role.
    pub fn set_role(&self, role: Role) {
        self.role.store(role.gauge_value() as u8, Ordering::SeqCst);
    }

    /// Whether this node currently accepts writes.
    pub fn is_leader(&self) -> bool {
        matches!(self.role(), Role::Leader)
    }

    /// Whether this node is serving in degraded stale-read mode (promoted
    /// while known to be behind the dead leader).
    pub fn stale(&self) -> bool {
        self.stale.load(Ordering::SeqCst)
    }

    /// Records a warm failover: leadership taken over at `applied_seq`,
    /// `stale` when the dead leader was known to be ahead.
    pub fn mark_promoted(&self, applied_seq: u64, stale: bool) {
        self.promoted_at_seq.store(applied_seq, Ordering::SeqCst);
        self.stale.store(stale, Ordering::SeqCst);
        self.promoted.store(true, Ordering::SeqCst);
        self.set_role(Role::Leader);
    }

    /// The sequence this node held when it promoted itself, if it ever
    /// did.
    pub fn promoted_at(&self) -> Option<u64> {
        self.promoted
            .load(Ordering::SeqCst)
            .then(|| self.promoted_at_seq.load(Ordering::SeqCst))
    }
}

/// Why a replication fetch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplError {
    /// The leader did not answer (connection refused, reset, timed out —
    /// or a chaos-injected partition/crash).
    Unreachable(String),
    /// The leader answered something unparseable or non-200.
    Protocol(String),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Unreachable(d) => write!(f, "leader unreachable: {d}"),
            ReplError::Protocol(d) => write!(f, "replication protocol error: {d}"),
        }
    }
}

impl std::error::Error for ReplError {}

/// How a follower reaches its leader. The HTTP implementation is
/// [`HttpTransport`]; the chaos suite substitutes in-process transports
/// wired through seeded fault plans.
pub trait ReplTransport: Send {
    /// Fetches ops strictly after `from_seq`, or a snapshot redirect.
    ///
    /// # Errors
    ///
    /// [`ReplError`] when the leader is unreachable or answers garbage.
    fn fetch_log(&self, from_seq: u64) -> Result<LogFetch, ReplError>;

    /// Fetches a full snapshot for cold/lagging catch-up.
    ///
    /// # Errors
    ///
    /// [`ReplError`] as for [`ReplTransport::fetch_log`].
    fn fetch_snapshot(&self) -> Result<KvSnapshot, ReplError>;
}

/// The real-TCP transport: polls the leader's `/v1/repl/*` endpoints.
pub struct HttpTransport {
    addr: String,
}

impl HttpTransport {
    /// A transport polling the leader at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into() }
    }

    fn get_json(&self, path: &str) -> Result<String, ReplError> {
        match http_call(&self.addr, "GET", path, b"") {
            Err(e) => Err(ReplError::Unreachable(e.to_string())),
            Ok((200, body)) => Ok(body),
            Ok((status, body)) => Err(ReplError::Protocol(format!(
                "GET {path} answered {status}: {body}"
            ))),
        }
    }
}

impl ReplTransport for HttpTransport {
    fn fetch_log(&self, from_seq: u64) -> Result<LogFetch, ReplError> {
        let body = self.get_json(&format!("/v1/repl/log/{from_seq}"))?;
        serde_json::from_str(&body).map_err(|e| ReplError::Protocol(e.to_string()))
    }

    fn fetch_snapshot(&self) -> Result<KvSnapshot, ReplError> {
        let body = self.get_json("/v1/repl/snapshot")?;
        serde_json::from_str(&body).map_err(|e| ReplError::Protocol(e.to_string()))
    }
}

/// What one replication poll did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PollOutcome {
    /// Applied this many new ops from the leader's log.
    Applied(usize),
    /// Nothing new — the replica is caught up.
    UpToDate,
    /// Lag exceeded the leader's retained log; restored a full snapshot.
    SnapshotRestored {
        /// The sequence the replica is now current through.
        applied_seq: u64,
    },
    /// The leader did not answer; retry after the recorded backoff.
    TransportError {
        /// Consecutive failures so far.
        consecutive: u32,
        /// Seeded-deterministic delay before the next poll, ms —
        /// *recorded*, never slept here.
        backoff_ms: u64,
    },
    /// Consecutive failures reached the threshold: this node promoted
    /// itself to leader with its caught-up store.
    Promoted {
        /// The sequence the store was current through at takeover.
        at_seq: u64,
        /// Whether the dead leader was known to be ahead (stale-read
        /// mode).
        stale: bool,
    },
    /// This node already leads; there is nothing to replicate.
    AlreadyLeader,
}

/// The follower-side replication driver: poll, apply, back off, promote.
pub struct Replicator {
    service: Arc<Service>,
    transport: Box<dyn ReplTransport>,
    backoff: Backoff,
    failures: u32,
    failure_threshold: u32,
    /// Highest leader sequence ever *observed* (log or snapshot headers),
    /// even if its ops never arrived — the staleness watermark.
    last_leader_seq: u64,
}

impl Replicator {
    /// A replicator driving `service` from `transport`. Backoff pacing is
    /// seeded from the service's replica config, so two runs with the
    /// same seed record identical schedules.
    pub fn new(service: Arc<Service>, transport: Box<dyn ReplTransport>) -> Self {
        let rc = service.config().replica.clone();
        let backoff = Backoff::exponential(rc.backoff_base_ms)
            .with_cap(rc.backoff_cap_ms)
            .with_jitter(service.config().seed ^ 0x5EED_4E91_1CA7_0157);
        Self {
            service,
            transport,
            backoff,
            failures: 0,
            failure_threshold: rc.failure_threshold.max(1),
            last_leader_seq: 0,
        }
    }

    /// The highest leader sequence this replicator ever observed.
    pub fn last_leader_seq(&self) -> u64 {
        self.last_leader_seq
    }

    /// Consecutive transport failures so far.
    pub fn consecutive_failures(&self) -> u32 {
        self.failures
    }

    /// One replication step: fetch from the leader, apply, and update the
    /// service's role/lag state. Never sleeps — callers schedule the next
    /// poll using any recorded `backoff_ms`.
    pub fn poll_once(&mut self) -> PollOutcome {
        if self.service.role().is_leader() {
            return PollOutcome::AlreadyLeader;
        }
        let from = self.service.kv().applied_seq();
        match self.transport.fetch_log(from) {
            Ok(LogFetch::Ops(ops)) => {
                self.failures = 0;
                self.service.reaffirm_follower();
                if let Some(max) = ops.iter().map(|o| o.seq).max() {
                    self.last_leader_seq = self.last_leader_seq.max(max);
                }
                let applied = self.service.apply_replicated(ops);
                self.service.note_replication_lag(
                    self.last_leader_seq
                        .saturating_sub(self.service.kv().applied_seq()),
                );
                if applied == 0 {
                    PollOutcome::UpToDate
                } else {
                    PollOutcome::Applied(applied)
                }
            }
            Ok(LogFetch::NeedSnapshot { earliest }) => {
                self.last_leader_seq = self.last_leader_seq.max(earliest.saturating_sub(1));
                match self.transport.fetch_snapshot() {
                    Ok(snapshot) => {
                        self.failures = 0;
                        self.service.reaffirm_follower();
                        self.last_leader_seq = self.last_leader_seq.max(snapshot.applied_seq);
                        let applied_seq = snapshot.applied_seq;
                        self.service.restore_snapshot(&snapshot);
                        self.service
                            .note_replication_lag(self.last_leader_seq.saturating_sub(applied_seq));
                        PollOutcome::SnapshotRestored { applied_seq }
                    }
                    Err(e) => self.note_failure(e),
                }
            }
            Err(e) => self.note_failure(e),
        }
    }

    fn note_failure(&mut self, _error: ReplError) -> PollOutcome {
        self.failures += 1;
        if self.failures >= self.failure_threshold {
            let at_seq = self.service.kv().applied_seq();
            let stale = self.last_leader_seq > at_seq;
            self.service.promote(at_seq, stale);
            return PollOutcome::Promoted { at_seq, stale };
        }
        self.service.set_candidate_if_follower();
        PollOutcome::TransportError {
            consecutive: self.failures,
            backoff_ms: self.backoff.delay_ms(self.failures),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_labels_and_gauges_are_stable() {
        assert_eq!(Role::Leader.label(), "leader");
        assert_eq!(Role::Follower.label(), "follower");
        assert_eq!(Role::Candidate.label(), "candidate");
        assert_eq!(Role::Follower.gauge_value(), 0);
        assert_eq!(Role::Candidate.gauge_value(), 1);
        assert_eq!(Role::Leader.gauge_value(), 2);
    }

    #[test]
    fn role_cell_tracks_promotion() {
        let cell = RoleCell::new(Role::Follower);
        assert!(!cell.is_leader());
        assert_eq!(cell.promoted_at(), None);
        cell.mark_promoted(41, true);
        assert!(cell.is_leader());
        assert!(cell.stale());
        assert_eq!(cell.promoted_at(), Some(41));
        // A leader by construction never reports a promotion.
        let born_leader = RoleCell::new(Role::Leader);
        assert!(born_leader.is_leader());
        assert_eq!(born_leader.promoted_at(), None);
        assert!(!born_leader.stale());
    }
}
