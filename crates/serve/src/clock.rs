//! Deadline clocks: wall time for production, a manual clock for tests.
//!
//! Admission control compares "how long has this request waited" against
//! its deadline. Behind a trait, the daemon runs on [`WallClock`] while
//! tests drive a [`ManualClock`] — deadlines expire exactly when the test
//! says so, with no sleeps and no flakiness (the same recorded-not-slept
//! discipline as `RetryPolicy` backoff in `nshard-core`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic millisecond clock.
pub trait Clock: Send + Sync {
    /// Milliseconds since an arbitrary (fixed) origin.
    fn now_ms(&self) -> u64;
}

/// The production clock: milliseconds since construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock anchored at now.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// A test clock advanced explicitly; never moves on its own.
///
/// # Example
///
/// ```
/// use nshard_serve::clock::{Clock, ManualClock};
///
/// let clock = ManualClock::new();
/// assert_eq!(clock.now_ms(), 0);
/// clock.advance_ms(250);
/// assert_eq!(clock.now_ms(), 250);
/// ```
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ms`.
    pub fn advance_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute time.
    pub fn set_ms(&self, ms: u64) {
        self.now.store(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_only_moves_when_told() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance_ms(10);
        c.advance_ms(5);
        assert_eq!(c.now_ms(), 15);
        c.set_ms(3);
        assert_eq!(c.now_ms(), 3);
    }
}
