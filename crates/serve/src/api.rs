//! Wire types of the JSON API.
//!
//! Requests are deserialized with hand-written impls so optional fields
//! (`deadline_ms`, `incumbent_id`, `adopt`) may simply be omitted — the
//! vendored serde derive requires every field to be present. Responses
//! use the derive; field order is declaration order, and the vendored
//! serializer is deterministic, so identical planning results serialize
//! to **byte-identical** response bodies (the property the 8-thread
//! integration test pins down). No timestamps or other request-scoped
//! entropy may ever enter these types.

use serde::value::Value;
use serde::{Deserialize, Serialize};

use nshard_core::{PlanProvenance, PlanSource, ShardingPlan};
use nshard_data::ShardingTask;

/// `POST /v1/plan` — plan a task from scratch.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRequest {
    /// The task to shard.
    pub task: ShardingTask,
    /// Per-request deadline in ms; defaults to the server's
    /// `default_deadline_ms`. Expired in queue ⇒ `503`; nearly expired ⇒
    /// degraded (greedy) search.
    pub deadline_ms: Option<u64>,
    /// Store the plan on success (default `true`). Idempotent by plan id.
    pub adopt: bool,
}

impl Deserialize for PlanRequest {
    fn from_value(v: &Value) -> Result<Self, serde::de::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::de::Error::custom("plan request must be a JSON object"))?;
        Ok(Self {
            task: serde::__field(map, "task")?,
            deadline_ms: opt_field(map, "deadline_ms")?,
            adopt: opt_field(map, "adopt")?.unwrap_or(true),
        })
    }
}

/// `POST /v1/replan` — replan warm-started from a stored incumbent.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanRequest {
    /// The (drifted) task to shard.
    pub task: ShardingTask,
    /// Incumbent plan id; defaults to the most recently adopted plan.
    pub incumbent_id: Option<String>,
    /// Per-request deadline in ms (see [`PlanRequest::deadline_ms`]).
    pub deadline_ms: Option<u64>,
    /// Store the plan on success (default `true`).
    pub adopt: bool,
}

impl Deserialize for ReplanRequest {
    fn from_value(v: &Value) -> Result<Self, serde::de::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::de::Error::custom("replan request must be a JSON object"))?;
        Ok(Self {
            task: serde::__field(map, "task")?,
            incumbent_id: opt_field(map, "incumbent_id")?,
            deadline_ms: opt_field(map, "deadline_ms")?,
            adopt: opt_field(map, "adopt")?.unwrap_or(true),
        })
    }
}

/// Looks up an optional field: absent or `null` ⇒ `None`.
fn opt_field<T: Deserialize>(
    map: &[(String, Value)],
    key: &str,
) -> Result<Option<T>, serde::de::Error> {
    match map.iter().find(|(k, _)| k == key) {
        None | Some((_, Value::Null)) => Ok(None),
        Some((_, v)) => T::from_value(v)
            .map(Some)
            .map_err(|e| serde::de::Error::custom(format!("field `{key}`: {e}"))),
    }
}

/// Body of a successful `POST /v1/plan`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PlanResponse {
    /// Content-addressed plan id.
    pub id: String,
    /// Store adoption version (`0` when `adopt` was `false`).
    pub version: u64,
    /// `true` when deadline pressure or chain downgrades degraded the
    /// search.
    pub degraded: bool,
    /// Short stable label of the accepting chain stage.
    pub source: String,
    /// Predicted embedding cost under the cost models, ms.
    pub predicted_ms: f64,
    /// The plan itself.
    pub plan: ShardingPlan,
    /// Full decision record.
    pub provenance: PlanProvenance,
}

/// Body of a successful `POST /v1/replan`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReplanResponse {
    /// Content-addressed plan id.
    pub id: String,
    /// Store adoption version (`0` when `adopt` was `false`).
    pub version: u64,
    /// `true` when the search was degraded (see [`PlanResponse::degraded`]).
    pub degraded: bool,
    /// Short stable label of the accepting stage.
    pub source: String,
    /// Predicted embedding cost, ms.
    pub predicted_ms: f64,
    /// Bytes that must move from the incumbent to adopt this plan.
    pub migration_bytes: u64,
    /// `true` when the warm-started incremental planner produced the plan.
    pub incremental: bool,
    /// Candidate plans scored by the incremental planner.
    pub evaluated_plans: u64,
    /// The plan itself.
    pub plan: ShardingPlan,
    /// Full decision record.
    pub provenance: PlanProvenance,
}

/// One ground-truth cost observation reported by a deployment —
/// `(model input features, predicted cost, observed cost)` for exactly
/// one of the three cost models. The serve daemon buffers these verbatim
/// (`POST /v1/observations`); the continual-learning loop drains them
/// with `Service::take_observations` and owns sampling and fine-tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservationWire {
    /// Which cost model the sample feeds: `"compute"`, `"comm_forward"`
    /// or `"comm_backward"`.
    pub kind: String,
    /// Model input rows: per-table feature rows for `"compute"`, a single
    /// wrapped feature row for the comm kinds.
    pub features: Vec<Vec<f32>>,
    /// What the currently-served model predicted, ms.
    pub predicted_ms: f64,
    /// What the deployment actually measured, ms.
    pub observed_ms: f64,
}

/// `POST /v1/observations` — report a batch of ground-truth observations.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationsRequest {
    /// The batch; empty batches are accepted (and ack `accepted: 0`).
    pub observations: Vec<ObservationWire>,
}

impl Deserialize for ObservationsRequest {
    fn from_value(v: &Value) -> Result<Self, serde::de::Error> {
        let map = v.as_map().ok_or_else(|| {
            serde::de::Error::custom("observations request must be a JSON object")
        })?;
        Ok(Self {
            observations: serde::__field(map, "observations")?,
        })
    }
}

/// Body of a successful `POST /v1/observations`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ObservationsAck {
    /// Observations admitted into the buffer by this request.
    pub accepted: u64,
    /// Total observations currently buffered (after bounded eviction).
    pub buffered: u64,
    /// The model version the predictions were scored against (the
    /// engine's current version at ingest time).
    pub model_version: u64,
}

/// Body of every error response.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ErrorBody {
    /// Short stable error kind (`"queue_full"`, `"deadline_expired"`,
    /// `"bad_request"`, `"not_found"`, `"infeasible"`, ...).
    pub error: String,
    /// Human-readable detail.
    pub detail: String,
}

impl ErrorBody {
    /// Serializes the body, with a hand-rolled fallback that cannot fail.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self)
            .unwrap_or_else(|_| "{\"error\":\"internal\",\"detail\":\"\"}".to_string())
    }

    /// A new error body.
    pub fn new(error: impl Into<String>, detail: impl Into<String>) -> Self {
        Self {
            error: error.into(),
            detail: detail.into(),
        }
    }
}

/// Body of `GET /health`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HealthResponse {
    /// Always `"ok"` when the daemon can respond at all.
    pub status: String,
    /// Number of adopted plans in the store.
    pub plans: u64,
    /// Number of worker threads draining the queue.
    pub workers: u64,
    /// Bounded queue capacity.
    pub queue_capacity: u64,
    /// This node's replication role (`"leader"`, `"follower"`,
    /// `"candidate"`).
    pub role: String,
    /// Version of the cost-model bundle currently serving predictions;
    /// starts at `1` and increments on every continual-learning
    /// promotion (or replicated model swap).
    pub model_version: u64,
}

/// Body of `GET /v1/repl/status` — a replica's replication facts.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReplStatus {
    /// The node's configured name.
    pub node: String,
    /// Current role label.
    pub role: String,
    /// Sequence of the last applied mutation.
    pub applied_seq: u64,
    /// `true` when serving in degraded stale-read mode after a failover.
    pub stale: bool,
    /// Oldest sequence still in the retained op log.
    pub log_earliest: u64,
    /// Retained op-log length.
    pub log_len: u64,
    /// Plans materialized in the local store.
    pub plans: u64,
}

/// Short stable label for a [`PlanSource`], used in responses and metric
/// labels.
pub fn source_label(source: &PlanSource) -> String {
    match source {
        PlanSource::Primary { algorithm } => format!("primary:{algorithm}"),
        PlanSource::Repaired {
            algorithm,
            repair_steps,
        } => format!("repaired:{algorithm}:{repair_steps}"),
        PlanSource::Fallback { algorithm } => format!("fallback:{algorithm}"),
        PlanSource::SizeBalanced => "size_balanced".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_data::{TableConfig, TableId};

    fn task_json() -> String {
        let tables: Vec<TableConfig> = (0..2)
            .map(|i| TableConfig::new(TableId(i), 16, 1024, 4.0, 1.0))
            .collect();
        serde_json::to_string(&ShardingTask::new(tables, 2, 1 << 30, 256)).unwrap()
    }

    #[test]
    fn plan_request_defaults_optional_fields() {
        let body = format!("{{\"task\":{}}}", task_json());
        let req: PlanRequest = serde_json::from_str(&body).unwrap();
        assert_eq!(req.deadline_ms, None);
        assert!(req.adopt);
        assert_eq!(req.task.num_devices(), 2);
    }

    #[test]
    fn plan_request_honors_explicit_fields() {
        let body = format!(
            "{{\"task\":{},\"deadline_ms\":1500,\"adopt\":false}}",
            task_json()
        );
        let req: PlanRequest = serde_json::from_str(&body).unwrap();
        assert_eq!(req.deadline_ms, Some(1500));
        assert!(!req.adopt);
    }

    #[test]
    fn replan_request_parses_incumbent_id() {
        let body = format!("{{\"task\":{},\"incumbent_id\":\"abc123\"}}", task_json());
        let req: ReplanRequest = serde_json::from_str(&body).unwrap();
        assert_eq!(req.incumbent_id.as_deref(), Some("abc123"));
        assert!(req.adopt);
    }

    #[test]
    fn missing_task_is_an_error() {
        let err = serde_json::from_str::<PlanRequest>("{}").unwrap_err();
        assert!(err.to_string().contains("task"));
    }

    #[test]
    fn observations_request_round_trips() {
        let wire = ObservationWire {
            kind: "compute".into(),
            features: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            predicted_ms: 1.5,
            observed_ms: 2.0,
        };
        let body = format!(
            "{{\"observations\":[{}]}}",
            serde_json::to_string(&wire).unwrap()
        );
        let req: ObservationsRequest = serde_json::from_str(&body).unwrap();
        assert_eq!(req.observations, vec![wire]);
    }

    #[test]
    fn observations_request_requires_the_field() {
        let err = serde_json::from_str::<ObservationsRequest>("{}").unwrap_err();
        assert!(err.to_string().contains("observations"));
    }

    #[test]
    fn source_labels_are_stable() {
        assert_eq!(
            source_label(&PlanSource::Primary {
                algorithm: "neuroshard".into()
            }),
            "primary:neuroshard"
        );
        assert_eq!(source_label(&PlanSource::SizeBalanced), "size_balanced");
    }
}
