//! The sequenced plan KV — the replication substrate of the control plane.
//!
//! [`PlanKv`] is a typed key/value layer over the daemon's stores in which
//! **every mutation carries a monotonic sequence number**. Writers express
//! their expectation with a [`MatchSeq`] condition (the classic
//! conditional-upsert discipline of metadata stores): `Exact(0)` means
//! "create only", `Exact(n)` means "replace exactly revision *n*", `GE(n)`
//! means "replace any revision at least *n*", `Any` is unconditional. A
//! failed condition is a typed [`KvError::SeqConflict`], never a silent
//! overwrite — which makes *retrying* an upsert idempotent: the retry that
//! lost the race conflicts instead of double-writing.
//!
//! Mutations append to a bounded **op log** ([`LogOp`]) that followers
//! tail. The follower side ([`PlanKv::apply`]) accepts ops in any order,
//! any number of times: ops at or below the applied sequence are
//! duplicates and ignored, the next-expected op applies immediately (plus
//! everything contiguous buffered behind it), and future ops are buffered.
//! Because application is gated on *exact sequence continuity*, two
//! replicas fed the same set of ops — shuffled, duplicated, re-sent —
//! converge to **byte-identical** stores ([`PlanKv::dump`] /
//! [`PlanKv::digest`] make that checkable). A replica whose lag exceeds
//! the leader's retained log window catches up from a full
//! [`KvSnapshot`] instead ([`LogFetch::NeedSnapshot`]).

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::store::fnv64;

/// The sequence condition of a conditional upsert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchSeq {
    /// Upsert unconditionally.
    Any,
    /// The key must currently be at exactly this sequence (`0` = absent,
    /// so `Exact(0)` is *create-only*).
    Exact(u64),
    /// The key's current sequence must be at least this (`GE(1)` =
    /// "must exist").
    GE(u64),
}

impl MatchSeq {
    /// Whether a key currently at `seq` (`0` when absent) satisfies the
    /// condition.
    pub fn matches(&self, seq: u64) -> bool {
        match self {
            MatchSeq::Any => true,
            MatchSeq::Exact(want) => seq == *want,
            MatchSeq::GE(min) => seq >= *min,
        }
    }
}

impl std::fmt::Display for MatchSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchSeq::Any => write!(f, "any"),
            MatchSeq::Exact(s) => write!(f, "== {s}"),
            MatchSeq::GE(s) => write!(f, ">= {s}"),
        }
    }
}

/// Errors of the sequenced KV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The upsert's [`MatchSeq`] condition did not hold.
    SeqConflict {
        /// The contended key.
        key: String,
        /// The condition the writer demanded.
        expected: String,
        /// The sequence actually found (`0` = key absent).
        found: u64,
    },
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::SeqConflict {
                key,
                expected,
                found,
            } => write!(
                f,
                "sequence conflict on {key}: expected seq {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for KvError {}

/// A stored value with the sequence of the mutation that wrote it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeqEntry {
    /// Sequence of the writing mutation.
    pub seq: u64,
    /// The value (JSON in practice; the KV is payload-agnostic).
    pub value: String,
}

/// One sequenced mutation — the unit of the replication log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogOp {
    /// Global sequence number (1-based, gapless per store).
    pub seq: u64,
    /// The key written.
    pub key: String,
    /// The value written.
    pub value: String,
}

/// One entry of a [`KvSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// The key.
    pub key: String,
    /// Sequence of the mutation that wrote it.
    pub seq: u64,
    /// The value.
    pub value: String,
}

/// A full materialized copy of the KV — the catch-up path for replicas
/// whose lag exceeds the leader's retained log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvSnapshot {
    /// The sequence the snapshot is current through.
    pub applied_seq: u64,
    /// Every entry, in key order.
    pub entries: Vec<SnapshotEntry>,
}

/// A follower's log-fetch result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogFetch {
    /// Ops strictly after the requested sequence, in order.
    Ops(Vec<LogOp>),
    /// The requested sequence predates the retained log — fetch a
    /// [`KvSnapshot`] instead.
    NeedSnapshot {
        /// Oldest sequence still in the retained log.
        earliest: u64,
    },
}

struct KvInner {
    entries: BTreeMap<String, SeqEntry>,
    applied_seq: u64,
    /// Retained tail of the op log, oldest first.
    log: VecDeque<LogOp>,
    /// Sequence of `log.front()`; `applied_seq + 1` when the log is empty.
    log_start: u64,
    /// Out-of-order ops waiting for their predecessors, keyed by seq.
    pending: BTreeMap<u64, LogOp>,
}

/// The sequenced, replicable KV. See the [module docs](self).
pub struct PlanKv {
    inner: Mutex<KvInner>,
    log_keep: usize,
}

impl PlanKv {
    /// An empty KV retaining at most `log_keep` ops for followers to
    /// tail (older ops are compacted away; lagging followers then take
    /// the snapshot path).
    pub fn new(log_keep: usize) -> Self {
        Self {
            inner: Mutex::new(KvInner {
                entries: BTreeMap::new(),
                applied_seq: 0,
                log: VecDeque::new(),
                log_start: 1,
                pending: BTreeMap::new(),
            }),
            log_keep: log_keep.max(1),
        }
    }

    /// Conditionally upserts `key` — the **leader** write path. On success
    /// the mutation is stamped with the next global sequence, logged for
    /// followers, and the new sequence returned.
    ///
    /// # Errors
    ///
    /// [`KvError::SeqConflict`] when the key's current sequence does not
    /// satisfy `expect`. Conflicts mutate nothing, which is what makes
    /// retried upserts idempotent.
    pub fn upsert(
        &self,
        key: &str,
        value: impl Into<String>,
        expect: MatchSeq,
    ) -> Result<u64, KvError> {
        let mut inner = self.inner.lock().expect("plan kv poisoned");
        let found = inner.entries.get(key).map(|e| e.seq).unwrap_or(0);
        if !expect.matches(found) {
            return Err(KvError::SeqConflict {
                key: key.to_string(),
                expected: expect.to_string(),
                found,
            });
        }
        let seq = inner.applied_seq + 1;
        let value = value.into();
        inner.applied_seq = seq;
        inner.entries.insert(
            key.to_string(),
            SeqEntry {
                seq,
                value: value.clone(),
            },
        );
        let op = LogOp {
            seq,
            key: key.to_string(),
            value,
        };
        Self::append_log(&mut inner, op, self.log_keep);
        Ok(seq)
    }

    /// Applies a replicated op — the **follower** write path. Returns the
    /// ops actually applied this call, in order (empty when `op` was a
    /// duplicate or had to be buffered; more than one when it unblocked
    /// buffered successors). Applied ops re-enter this replica's own log,
    /// so a promoted follower can serve followers of its own.
    pub fn apply(&self, op: LogOp) -> Vec<LogOp> {
        let mut inner = self.inner.lock().expect("plan kv poisoned");
        if op.seq <= inner.applied_seq {
            return Vec::new(); // duplicate delivery
        }
        if op.seq > inner.applied_seq + 1 {
            inner.pending.insert(op.seq, op); // future op: hold it
            return Vec::new();
        }
        let mut applied = Vec::new();
        let mut next = op;
        loop {
            inner.applied_seq = next.seq;
            inner.entries.insert(
                next.key.clone(),
                SeqEntry {
                    seq: next.seq,
                    value: next.value.clone(),
                },
            );
            Self::append_log(&mut inner, next.clone(), self.log_keep);
            applied.push(next);
            let want = inner.applied_seq + 1;
            match inner.pending.remove(&want) {
                Some(op) => next = op,
                None => break,
            }
        }
        applied
    }

    fn append_log(inner: &mut KvInner, op: LogOp, keep: usize) {
        if inner.log.is_empty() {
            inner.log_start = op.seq;
        }
        inner.log.push_back(op);
        while inner.log.len() > keep {
            inner.log.pop_front();
            inner.log_start += 1;
        }
    }

    /// Looks up one key.
    pub fn get(&self, key: &str) -> Option<SeqEntry> {
        self.inner
            .lock()
            .expect("plan kv poisoned")
            .entries
            .get(key)
            .cloned()
    }

    /// Looks up many keys at once, positionally.
    pub fn mget<'a>(&self, keys: impl IntoIterator<Item = &'a str>) -> Vec<Option<SeqEntry>> {
        let inner = self.inner.lock().expect("plan kv poisoned");
        keys.into_iter()
            .map(|k| inner.entries.get(k).cloned())
            .collect()
    }

    /// All entries whose key starts with `prefix`, in key order.
    pub fn prefix_list(&self, prefix: &str) -> Vec<(String, SeqEntry)> {
        let inner = self.inner.lock().expect("plan kv poisoned");
        inner
            .entries
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// The sequence of the last applied mutation (`0` when pristine).
    pub fn applied_seq(&self) -> u64 {
        self.inner.lock().expect("plan kv poisoned").applied_seq
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan kv poisoned").entries.len()
    }

    /// Whether the KV holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of out-of-order ops buffered awaiting predecessors.
    pub fn pending_len(&self) -> usize {
        self.inner.lock().expect("plan kv poisoned").pending.len()
    }

    /// The retained log window: `(oldest retained sequence, length)`.
    pub fn log_window(&self) -> (u64, usize) {
        let inner = self.inner.lock().expect("plan kv poisoned");
        (inner.log_start, inner.log.len())
    }

    /// Ops strictly after `from_seq` for a tailing follower, or the
    /// snapshot redirect when `from_seq` predates the retained log.
    pub fn log_since(&self, from_seq: u64) -> LogFetch {
        let inner = self.inner.lock().expect("plan kv poisoned");
        if from_seq + 1 < inner.log_start && inner.applied_seq > from_seq {
            return LogFetch::NeedSnapshot {
                earliest: inner.log_start,
            };
        }
        LogFetch::Ops(
            inner
                .log
                .iter()
                .filter(|op| op.seq > from_seq)
                .cloned()
                .collect(),
        )
    }

    /// A full copy of the KV for cold/lagging replicas.
    pub fn snapshot(&self) -> KvSnapshot {
        let inner = self.inner.lock().expect("plan kv poisoned");
        KvSnapshot {
            applied_seq: inner.applied_seq,
            entries: inner
                .entries
                .iter()
                .map(|(k, e)| SnapshotEntry {
                    key: k.clone(),
                    seq: e.seq,
                    value: e.value.clone(),
                })
                .collect(),
        }
    }

    /// Replaces this replica's contents with `snapshot` (the catch-up
    /// path). Buffered future ops beyond the snapshot are kept and drain
    /// as soon as their predecessors stream in.
    pub fn restore(&self, snapshot: &KvSnapshot) {
        let mut inner = self.inner.lock().expect("plan kv poisoned");
        inner.entries = snapshot
            .entries
            .iter()
            .map(|e| {
                (
                    e.key.clone(),
                    SeqEntry {
                        seq: e.seq,
                        value: e.value.clone(),
                    },
                )
            })
            .collect();
        inner.applied_seq = snapshot.applied_seq;
        inner.log.clear();
        inner.log_start = snapshot.applied_seq + 1;
        let stale: Vec<u64> = inner
            .pending
            .range(..=snapshot.applied_seq)
            .map(|(s, _)| *s)
            .collect();
        for s in stale {
            inner.pending.remove(&s);
        }
    }

    /// Canonical dump of the live entries (`key\tseq\tvalue` lines in key
    /// order) — two converged replicas dump **byte-identical** strings.
    pub fn dump(&self) -> String {
        let inner = self.inner.lock().expect("plan kv poisoned");
        let mut out = format!("applied_seq={}\n", inner.applied_seq);
        for (k, e) in &inner.entries {
            out.push_str(&format!("{k}\t{}\t{}\n", e.seq, e.value));
        }
        out
    }

    /// FNV-1a digest of [`PlanKv::dump`] — the cheap convergence check.
    pub fn digest(&self) -> u64 {
        fnv64(self.dump().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_seq_semantics() {
        assert!(MatchSeq::Any.matches(0) && MatchSeq::Any.matches(7));
        assert!(MatchSeq::Exact(0).matches(0) && !MatchSeq::Exact(0).matches(1));
        assert!(MatchSeq::GE(1).matches(1) && MatchSeq::GE(1).matches(9));
        assert!(!MatchSeq::GE(1).matches(0));
    }

    #[test]
    fn conditional_upserts_are_sequenced_and_idempotent() {
        let kv = PlanKv::new(64);
        let s1 = kv.upsert("plans/a", "A1", MatchSeq::Exact(0)).unwrap();
        assert_eq!(s1, 1);
        // Create-only on an existing key conflicts — the idempotence story.
        let err = kv.upsert("plans/a", "A1", MatchSeq::Exact(0)).unwrap_err();
        assert!(matches!(err, KvError::SeqConflict { found: 1, .. }));
        assert_eq!(
            kv.get("plans/a").unwrap().value,
            "A1",
            "conflict mutates nothing"
        );
        // Replace exactly revision 1.
        let s2 = kv.upsert("plans/a", "A2", MatchSeq::Exact(1)).unwrap();
        assert_eq!(s2, 2);
        // A writer still holding revision 1 loses cleanly.
        assert!(kv.upsert("plans/a", "stale", MatchSeq::Exact(1)).is_err());
        // GE accepts anything current-or-later.
        let s3 = kv.upsert("plans/a", "A3", MatchSeq::GE(1)).unwrap();
        assert_eq!(s3, 3);
        assert_eq!(kv.applied_seq(), 3);
    }

    #[test]
    fn reads_get_mget_prefix() {
        let kv = PlanKv::new(64);
        kv.upsert("plans/b", "B", MatchSeq::Any).unwrap();
        kv.upsert("plans/a", "A", MatchSeq::Any).unwrap();
        kv.upsert("models/m", "M", MatchSeq::Any).unwrap();
        assert_eq!(kv.get("plans/a").unwrap().value, "A");
        assert!(kv.get("plans/zz").is_none());
        let got = kv.mget(["plans/a", "nope", "models/m"]);
        assert_eq!(got[0].as_ref().unwrap().value, "A");
        assert!(got[1].is_none());
        assert_eq!(got[2].as_ref().unwrap().value, "M");
        let plans = kv.prefix_list("plans/");
        assert_eq!(
            plans.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["plans/a", "plans/b"],
            "prefix listing is key-ordered"
        );
        assert_eq!(kv.len(), 3);
    }

    #[test]
    fn apply_tolerates_reorder_and_duplication() {
        let leader = PlanKv::new(64);
        for i in 0..5 {
            leader
                .upsert(&format!("k{i}"), format!("v{i}"), MatchSeq::Any)
                .unwrap();
        }
        let LogFetch::Ops(ops) = leader.log_since(0) else {
            panic!("log retained")
        };
        let follower = PlanKv::new(64);
        // Deliver out of order with duplicates: 3, 1, 1, 4, 2, 0, 0, 3.
        for &i in &[3usize, 1, 1, 4, 2, 0, 0, 3] {
            follower.apply(ops[i].clone());
        }
        assert_eq!(follower.dump(), leader.dump(), "byte-identical convergence");
        assert_eq!(follower.digest(), leader.digest());
        assert_eq!(follower.pending_len(), 0);
        // The op that unblocked the buffer reported the whole drained run.
        let f2 = PlanKv::new(64);
        assert!(f2.apply(ops[2].clone()).is_empty(), "buffered");
        assert!(f2.apply(ops[1].clone()).is_empty(), "still gapped");
        let drained = f2.apply(ops[0].clone());
        assert_eq!(drained.len(), 3, "op 1 drained ops 2 and 3 behind it");
    }

    #[test]
    fn compaction_redirects_laggards_to_snapshot() {
        let kv = PlanKv::new(4);
        for i in 0..10 {
            kv.upsert("hot", format!("v{i}"), MatchSeq::Any).unwrap();
        }
        // Seqs 1..=6 are compacted away (keep = 4 retains 7..=10).
        match kv.log_since(2) {
            LogFetch::NeedSnapshot { earliest } => assert_eq!(earliest, 7),
            other => panic!("expected snapshot redirect, got {other:?}"),
        }
        // A follower inside the window tails normally.
        match kv.log_since(8) {
            LogFetch::Ops(ops) => {
                assert_eq!(ops.iter().map(|o| o.seq).collect::<Vec<_>>(), vec![9, 10]);
            }
            other => panic!("expected ops, got {other:?}"),
        }
        // Fully caught up: empty fetch, not a snapshot.
        assert_eq!(kv.log_since(10), LogFetch::Ops(Vec::new()));

        // Snapshot restore catches the laggard up byte-identically...
        let lagging = PlanKv::new(4);
        lagging.restore(&kv.snapshot());
        assert_eq!(lagging.dump(), kv.dump());
        assert_eq!(lagging.applied_seq(), 10);
        // ...and it keeps tailing from there.
        kv.upsert("hot", "v10", MatchSeq::Any).unwrap();
        if let LogFetch::Ops(ops) = kv.log_since(lagging.applied_seq()) {
            for op in ops {
                lagging.apply(op);
            }
        }
        assert_eq!(lagging.dump(), kv.dump());
    }

    #[test]
    fn wire_types_round_trip_as_json() {
        let op = LogOp {
            seq: 3,
            key: "plans/x".into(),
            value: "{\"id\":\"x\"}".into(),
        };
        let back: LogOp = serde_json::from_str(&serde_json::to_string(&op).unwrap()).unwrap();
        assert_eq!(back, op);
        let fetch = LogFetch::Ops(vec![op]);
        let back: LogFetch = serde_json::from_str(&serde_json::to_string(&fetch).unwrap()).unwrap();
        assert_eq!(back, fetch);
        let redirect = LogFetch::NeedSnapshot { earliest: 9 };
        let back: LogFetch =
            serde_json::from_str(&serde_json::to_string(&redirect).unwrap()).unwrap();
        assert_eq!(back, redirect);
        let kv = PlanKv::new(8);
        kv.upsert("a", "1", MatchSeq::Any).unwrap();
        let snap = kv.snapshot();
        let back: KvSnapshot =
            serde_json::from_str(&serde_json::to_string(&snap).unwrap()).unwrap();
        assert_eq!(back, snap);
    }
}
