//! A small lock-sharded metrics registry with Prometheus text exposition.
//!
//! The daemon (and the bench binaries) need counters, gauges and latency
//! histograms that are cheap to update from many worker threads at once.
//! The registry shards its name → metric maps across a fixed set of
//! mutexes, so *registration* (a rare, name-hashed lookup) takes one shard
//! lock while *updates* (the hot path) are plain atomic operations on the
//! `Arc`-shared metric — no lock is held while counting.
//!
//! Rendering ([`MetricsRegistry::render`]) walks every shard, sorts by
//! metric name and emits the Prometheus text format, so scrapes are
//! deterministic byte-for-byte for a given set of counter values.
//!
//! Histograms use fixed exponential bucket bounds and expose
//! summary-style `quantile` lines (p50/p95/p99 interpolated from bucket
//! counts) plus `_sum`/`_count`, which is what the serving layer's latency
//! SLO dashboards read.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of registry shards; a power of two so the name hash maps with a
/// mask. Contention on registration is negligible at this size.
const REGISTRY_SHARDS: usize = 8;

/// FNV-1a hash of a metric name, for shard selection.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable gauge holding a non-negative integer (e.g. a queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements by one (saturating at zero).
    pub fn dec(&self) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Default histogram bucket upper bounds, in milliseconds: exponential
/// from 0.25 ms to ~128 s. Values above the last bound land in the
/// implicit `+Inf` bucket.
pub const DEFAULT_BUCKETS_MS: [f64; 20] = [
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
    8192.0, 16384.0, 32768.0, 65536.0, 131072.0,
];

/// A fixed-bucket latency histogram with atomic bucket counters.
///
/// # Example
///
/// ```
/// use nshard_serve::metrics::Histogram;
///
/// let h = Histogram::default_ms();
/// for v in [1.0, 2.0, 3.0, 100.0] {
///     h.observe(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.quantile(0.5) <= h.quantile(0.99));
/// ```
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `buckets[i]` counts observations `<= bounds[i]`; the last slot is
    /// the `+Inf` bucket.
    buckets: Vec<AtomicU64>,
    /// Sum of observations in micro-units (value × 1000, rounded), so the
    /// atomic stays an integer.
    sum_milli: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_milli: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// A histogram with the default millisecond bounds.
    pub fn default_ms() -> Self {
        Self::new(&DEFAULT_BUCKETS_MS)
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let milli = (value.max(0.0) * 1000.0).round() as u64;
        self.sum_milli.fetch_add(milli, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum_milli.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// The `q`-quantile (`0 < q <= 1`), linearly interpolated within the
    /// containing bucket; 0 when empty. Values in the `+Inf` bucket report
    /// the last finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if seen + n >= target {
                if i >= self.bounds.len() {
                    return *self.bounds.last().expect("bounds are non-empty");
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let into = (target - seen) as f64 / n.max(1) as f64;
                return lo + (hi - lo) * into;
            }
            seen += n;
        }
        *self.bounds.last().expect("bounds are non-empty")
    }

    /// A `(count, sum, p50, p95, p99)` snapshot.
    pub fn snapshot(&self) -> (u64, f64, f64, f64, f64) {
        (
            self.count(),
            self.sum(),
            self.quantile(0.5),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

/// One registered metric.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    help: String,
    metric: Metric,
}

/// A lock-sharded registry of named metrics rendering to Prometheus text.
///
/// Metric names may carry inline Prometheus labels
/// (`requests_total{code="200"}`); the family name before the brace is
/// what `# HELP` / `# TYPE` comments are grouped by.
///
/// # Example
///
/// ```
/// use nshard_serve::metrics::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// reg.counter("requests_total{code=\"200\"}", "Requests served").inc();
/// let text = reg.render();
/// assert!(text.contains("# TYPE requests_total counter"));
/// assert!(text.contains("requests_total{code=\"200\"} 1"));
/// ```
pub struct MetricsRegistry {
    shards: Vec<Mutex<BTreeMap<String, Entry>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            shards: (0..REGISTRY_SHARDS)
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect(),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<BTreeMap<String, Entry>> {
        &self.shards[(name_hash(name) as usize) & (REGISTRY_SHARDS - 1)]
    }

    /// Gets or creates a counter. The help text of the first registration
    /// wins.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut shard = self.shard(name).lock().expect("registry shard poisoned");
        let entry = shard.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Counter(Arc::new(Counter::default())),
        });
        match &entry.metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// Gets or creates a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut shard = self.shard(name).lock().expect("registry shard poisoned");
        let entry = shard.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Gauge(Arc::new(Gauge::default())),
        });
        match &entry.metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// Gets or creates a histogram with the default millisecond buckets.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut shard = self.shard(name).lock().expect("registry shard poisoned");
        let entry = shard.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Histogram(Arc::new(Histogram::default_ms())),
        });
        match &entry.metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// Renders every metric in Prometheus text exposition format, sorted
    /// by name (deterministic for fixed counter values).
    pub fn render(&self) -> String {
        let mut all: BTreeMap<String, (String, String)> = BTreeMap::new();
        // (name -> (family, rendered lines)); collected under shard locks,
        // formatted outside them.
        for shard in &self.shards {
            let shard = shard.lock().expect("registry shard poisoned");
            for (name, entry) in shard.iter() {
                let family = name.split('{').next().unwrap_or(name).to_string();
                let lines = match &entry.metric {
                    Metric::Counter(c) => format!("{name} {}\n", c.get()),
                    Metric::Gauge(g) => format!("{name} {}\n", g.get()),
                    Metric::Histogram(h) => {
                        let (count, sum, p50, p95, p99) = h.snapshot();
                        format!(
                            "{family}{{quantile=\"0.5\"}} {p50}\n\
                             {family}{{quantile=\"0.95\"}} {p95}\n\
                             {family}{{quantile=\"0.99\"}} {p99}\n\
                             {family}_sum {sum}\n\
                             {family}_count {count}\n"
                        )
                    }
                };
                all.insert(
                    name.clone(),
                    (family, format!("{}\u{0}{lines}", entry.help)),
                );
            }
        }
        let mut out = String::new();
        let mut last_family = String::new();
        for (_, (family, help_and_lines)) in all {
            let (help, lines) = help_and_lines
                .split_once('\u{0}')
                .expect("separator is always present");
            if family != last_family {
                let kind = if lines.contains("quantile=") {
                    "summary"
                } else if family.ends_with("_total") {
                    "counter"
                } else {
                    "gauge"
                };
                out.push_str(&format!("# HELP {family} {help}\n# TYPE {family} {kind}\n"));
                last_family = family;
            }
            out.push_str(lines);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_count() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x_total", "help");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same underlying counter.
        assert_eq!(reg.counter("x_total", "other").get(), 5);

        let g = reg.gauge("depth", "queue depth");
        g.set(3);
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 2);
        g.set(0);
        g.dec();
        assert_eq!(g.get(), 0, "gauge saturates at zero");
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_interpolated() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for _ in 0..50 {
            h.observe(0.5);
        }
        for _ in 0..40 {
            h.observe(5.0);
        }
        for _ in 0..10 {
            h.observe(50.0);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p50 <= 1.0, "median falls in the first bucket");
        assert!(p99 > 10.0, "p99 falls in the last bucket");
        // Overflow lands in +Inf and reports the last finite bound.
        h.observe(1e9);
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default_ms();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn render_is_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total{code=\"200\"}", "bs").add(2);
        reg.counter("b_total{code=\"429\"}", "bs").inc();
        reg.gauge("a_depth", "depth").set(7);
        reg.histogram("c_latency_ms", "latency").observe(3.0);
        let text = reg.render();
        let a = text.find("a_depth 7").expect("gauge rendered");
        let b = text
            .find("b_total{code=\"200\"} 2")
            .expect("counter rendered");
        let b2 = text
            .find("b_total{code=\"429\"} 1")
            .expect("counter rendered");
        let c = text
            .find("c_latency_ms_count 1")
            .expect("histogram rendered");
        assert!(a < b && b < b2 && b2 < c, "sorted by name");
        assert!(text.contains("# TYPE a_depth gauge"));
        assert!(text.contains("# TYPE b_total counter"));
        assert!(text.contains("# TYPE c_latency_ms summary"));
        // One HELP/TYPE pair per family, not per labeled series.
        assert_eq!(text.matches("# TYPE b_total").count(), 1);
        // Rendering twice with no updates is byte-identical.
        assert_eq!(text, reg.render());
    }

    #[test]
    fn updates_are_thread_safe() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hammer_total", "hammered");
        let h = reg.histogram("hammer_ms", "hammered");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(f64::from(i % 100));
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("m", "h");
        reg.gauge("m", "h");
    }
}
