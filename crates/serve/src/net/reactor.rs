//! The reactor: one thread multiplexing the listener, a self-pipe
//! waker, and every connection over the readiness [`super::sys::Poller`].
//!
//! # Shape
//!
//! ```text
//!                    ┌───────────────── reactor thread ─────────────────┐
//!   accept ─────────▶│ listener (nonblocking)                           │
//!                    │    │ accept                                      │
//!                    │    ▼                                             │
//!   bytes ──────────▶│ ConnState: parse ─▶ Service::route_async ────────┼──▶ admission
//!                    │    ▲                   │ inline (GET/shed)       │    queue
//!                    │    │ in-order          ▼                         │      │
//!   bytes ◀──────────│ serialize ◀─── completion queue ◀── callback ◀───┼──────┘
//!                    │                        ▲                         │   (workers)
//!                    │ waker (self-pipe) ─────┘                         │
//!                    └──────────────────────────────────────────────────┘
//! ```
//!
//! Workers never touch sockets: a finished job's callback pushes
//! `(conn, seq, response)` onto the completion queue and writes one byte
//! into the self-pipe, waking the poller. The reactor serializes
//! responses in request order per connection ([`super::conn`]) and
//! handles all reads, writes, accepts, and timeouts itself.
//!
//! Connections are identified two ways: a slab **token** (poller
//! registration, reused after close) and a monotonically increasing
//! **connection id** (completion routing and timer entries, never
//! reused) — a late completion or stale timer for a closed connection
//! resolves to nothing instead of hitting a recycled slot.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::http::HttpResponse;
use crate::server::Service;

use super::conn::{ConnConfig, ConnState, ReadOutcome, TimeoutKind};
use super::sys::{Event, Interest, Poller};
use super::timer::TimerWheel;
use super::NetMetrics;

const LISTENER_TOKEN: usize = 0;
const WAKER_TOKEN: usize = 1;
const FIRST_CONN_TOKEN: usize = 2;

/// A finished job routed back to the reactor.
struct Completion {
    conn_id: u64,
    seq: u64,
    response: HttpResponse,
}

/// Shared between worker callbacks and the reactor thread.
struct Shared {
    completions: Mutex<Vec<Completion>>,
    /// Write half of the self-pipe; one byte = "check the queue".
    waker_tx: UnixStream,
    stop: AtomicBool,
}

impl Shared {
    fn wake(&self) {
        // A full pipe means a wake-up is already pending — exactly the
        // signal we wanted to send, so WouldBlock is success here.
        let _ = (&self.waker_tx).write(&[1u8]);
    }
}

/// One live connection in the slab.
struct ConnEntry {
    id: u64,
    stream: TcpStream,
    state: ConnState,
    /// Parse timestamp per in-flight sequence (lifecycle histogram).
    started_ms: HashMap<u64, u64>,
    /// Interest currently registered with the poller.
    registered: Interest,
    /// `timer_generation` value last armed in the wheel — avoids
    /// flooding the wheel with an entry per state change.
    armed_generation: Option<u64>,
}

/// Handle to the running reactor thread.
pub struct Reactor {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl Reactor {
    /// Starts the reactor over `listener` (moved to nonblocking mode).
    ///
    /// # Errors
    ///
    /// I/O errors creating the poller or the self-pipe, or registering
    /// the initial fds.
    pub fn spawn(service: Arc<Service>, listener: TcpListener) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let (waker_rx, waker_tx) = UnixStream::pair()?;
        waker_rx.set_nonblocking(true)?;
        waker_tx.set_nonblocking(true)?;

        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        poller.register(waker_rx.as_raw_fd(), WAKER_TOKEN, Interest::READ)?;

        let shared = Arc::new(Shared {
            completions: Mutex::new(Vec::new()),
            waker_tx,
            stop: AtomicBool::new(false),
        });
        let metrics = NetMetrics::new(service.metrics_registry());

        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("nshard-serve-reactor".into())
                .spawn(move || {
                    let mut loop_state = EventLoop {
                        service,
                        listener,
                        waker_rx,
                        poller,
                        shared,
                        metrics,
                        conns: Vec::new(),
                        by_id: HashMap::new(),
                        free_tokens: Vec::new(),
                        wheel: TimerWheel::new(),
                        next_conn_id: 0,
                        epoch: Instant::now(),
                        accepting: true,
                    };
                    loop_state.run();
                })
                .expect("spawn reactor")
        };
        Ok(Self {
            shared,
            thread: Some(thread),
        })
    }

    /// Stops accepting, force-closes idle connections, flushes what can
    /// be flushed, and joins the thread.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

struct EventLoop {
    service: Arc<Service>,
    listener: TcpListener,
    waker_rx: UnixStream,
    poller: Poller,
    shared: Arc<Shared>,
    metrics: NetMetrics,
    /// Slab: index = token − [`FIRST_CONN_TOKEN`].
    conns: Vec<Option<ConnEntry>>,
    /// Connection id → token, for completion and timer routing.
    by_id: HashMap<u64, usize>,
    free_tokens: Vec<usize>,
    wheel: TimerWheel,
    next_conn_id: u64,
    epoch: Instant,
    accepting: bool,
}

impl EventLoop {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn cfg(&self) -> ConnConfig {
        self.service.config().net.clone()
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                self.begin_shutdown();
                if self.by_id.is_empty() {
                    break;
                }
            }
            let timeout = self
                .wheel
                .next_deadline_ms()
                .map(|deadline| deadline.saturating_sub(self.now_ms()).min(1_000))
                .or(Some(1_000));
            if let Err(e) = self.poller.wait(timeout, &mut events) {
                eprintln!("nshard-serve reactor: poll failed: {e}");
                break;
            }
            let batch: Vec<Event> = events.clone();
            for event in batch {
                match event.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.drain_waker(),
                    token => self.conn_ready(token, event),
                }
            }
            self.drain_completions();
            self.fire_timers();
        }
    }

    /// Stop accepting and force-close every connection with nothing left
    /// to deliver; connections with in-flight jobs or unflushed bytes
    /// drain first (admitted work still gets its response — the same
    /// contract as the blocking path's graceful shutdown).
    fn begin_shutdown(&mut self) {
        if self.accepting {
            let _ = self.poller.deregister(self.listener.as_raw_fd());
            self.accepting = false;
        }
        let ids: Vec<u64> = self.by_id.keys().copied().collect();
        for id in ids {
            let Some(&token) = self.by_id.get(&id) else {
                continue;
            };
            let done = {
                let Some(entry) = self.entry_mut(token) else {
                    continue;
                };
                entry.state.inflight() == 0 && !entry.state.want_write()
            };
            if done {
                self.close_conn(token);
            }
        }
    }

    fn entry_mut(&mut self, token: usize) -> Option<&mut ConnEntry> {
        self.conns
            .get_mut(token.checked_sub(FIRST_CONN_TOKEN)?)?
            .as_mut()
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if !self.accepting {
                        continue; // drained and dropped during shutdown
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let now = self.now_ms();
                    let id = self.next_conn_id;
                    self.next_conn_id += 1;
                    let token = match self.free_tokens.pop() {
                        Some(token) => token,
                        None => {
                            self.conns.push(None);
                            self.conns.len() - 1 + FIRST_CONN_TOKEN
                        }
                    };
                    let entry = ConnEntry {
                        id,
                        stream,
                        state: ConnState::new(now),
                        started_ms: HashMap::new(),
                        registered: Interest::READ,
                        armed_generation: None,
                    };
                    if self
                        .poller
                        .register(entry.stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        self.free_tokens.push(token);
                        continue;
                    }
                    self.conns[token - FIRST_CONN_TOKEN] = Some(entry);
                    self.by_id.insert(id, token);
                    self.metrics.accepted_total.inc();
                    self.metrics.open_connections.inc();
                    self.rearm(token);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 256];
        while let Ok(n) = (&self.waker_rx).read(&mut buf) {
            if n == 0 {
                break;
            }
        }
    }

    fn conn_ready(&mut self, token: usize, event: Event) {
        if self.entry_mut(token).is_none() {
            return; // already closed earlier in this batch
        }
        if event.error && !event.readable && !event.writable {
            self.close_conn(token);
            return;
        }
        if event.readable {
            self.read_ready(token);
        }
        if self.entry_mut(token).is_some() && event.writable {
            self.write_ready(token);
        }
        self.finish_conn_turn(token);
    }

    /// Reads until `WouldBlock`, feeding the parser and dispatching any
    /// complete requests.
    fn read_ready(&mut self, token: usize) {
        let cfg = self.cfg();
        let mut buf = [0u8; 64 * 1024];
        loop {
            let Some(entry) = self.entry_mut(token) else {
                return;
            };
            if !entry.state.want_read(&cfg) {
                break;
            }
            match entry.stream.read(&mut buf) {
                Ok(0) => {
                    entry.state.on_peer_closed();
                    break;
                }
                Ok(n) => {
                    let now = self.now_ms();
                    let Some(entry) = self.entry_mut(token) else {
                        return;
                    };
                    let outcome = entry.state.on_bytes(&buf[..n], &cfg, now);
                    self.dispatch(token, outcome, now);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
    }

    /// Routes every parsed request; inline responses complete
    /// immediately, queued jobs get a completion-queue callback.
    fn dispatch(&mut self, token: usize, outcome: ReadOutcome, now: u64) {
        if let Some(fault) = &outcome.fault {
            self.metrics.count_parse_fault(fault);
        }
        for _ in 0..outcome.keepalive_reuse {
            self.metrics.keepalive_reuse_total.inc();
        }
        for _ in 0..outcome.pipelined {
            self.metrics.pipelined_requests_total.inc();
        }
        let Some(entry) = self.entry_mut(token) else {
            return;
        };
        let conn_id = entry.id;
        for (seq, request) in outcome.requests {
            let Some(entry) = self.entry_mut(token) else {
                return;
            };
            entry.started_ms.insert(seq, now);
            let shared = Arc::clone(&self.shared);
            let callback = Box::new(move |response: HttpResponse| {
                shared
                    .completions
                    .lock()
                    .expect("completions poisoned")
                    .push(Completion {
                        conn_id,
                        seq,
                        response,
                    });
                shared.wake();
            });
            let inline = self.service.route_async(&request, callback);
            if let Some(response) = inline {
                self.complete_on(token, seq, response);
            }
        }
    }

    /// Delivers one response into its connection's ordered pipeline.
    fn complete_on(&mut self, token: usize, seq: u64, response: HttpResponse) {
        let now = self.now_ms();
        let Some(entry) = self.entry_mut(token) else {
            return;
        };
        entry.state.complete(seq, response);
        if let Some(started) = entry.started_ms.remove(&seq) {
            self.metrics
                .request_lifecycle
                .observe(now.saturating_sub(started) as f64);
        }
    }

    /// Writes until `WouldBlock` or the buffer drains.
    fn write_ready(&mut self, token: usize) {
        loop {
            let now = self.now_ms();
            let Some(entry) = self.entry_mut(token) else {
                return;
            };
            if !entry.state.want_write() {
                break;
            }
            match entry.stream.write(entry.state.writable()) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    entry.state.advance_write(n, now);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
    }

    /// After any activity on a connection: resume paused parsing, close
    /// if finished, otherwise refresh poller interest and the timer.
    fn finish_conn_turn(&mut self, token: usize) {
        let cfg = self.cfg();
        // Completions may have freed pipeline slots with bytes already
        // buffered in the parser.
        let pending = {
            let Some(entry) = self.entry_mut(token) else {
                return;
            };
            if entry.state.want_read(&cfg) && entry.state.inflight() < cfg.max_pipeline {
                let outcome = entry.state.drain_parser(&cfg);
                (!outcome.requests.is_empty() || outcome.fault.is_some()).then_some(outcome)
            } else {
                None
            }
        };
        if let Some(outcome) = pending {
            let now = self.now_ms();
            self.dispatch(token, outcome, now);
        }

        let Some(entry) = self.entry_mut(token) else {
            return;
        };
        if entry.state.should_close() {
            self.close_conn(token);
            return;
        }
        let desired = Interest {
            read: entry.state.want_read(&cfg),
            write: entry.state.want_write(),
        };
        if desired != entry.registered {
            let fd = entry.stream.as_raw_fd();
            entry.registered = desired;
            let _ = self.poller.modify(fd, token, desired);
        }
        self.rearm(token);
    }

    /// Arms the connection's current deadline in the wheel (keyed by
    /// connection id, validated by generation on expiry).
    fn rearm(&mut self, token: usize) {
        let cfg = self.cfg();
        let Some(entry) = self.entry_mut(token) else {
            return;
        };
        let generation = entry.state.timer_generation;
        if entry.armed_generation == Some(generation) {
            return;
        }
        entry.armed_generation = Some(generation);
        let (deadline, _kind) = entry.state.deadline(&cfg);
        let id = entry.id;
        self.wheel.arm(id as usize, generation, deadline);
    }

    fn drain_completions(&mut self) {
        let completions: Vec<Completion> = std::mem::take(
            &mut *self
                .shared
                .completions
                .lock()
                .expect("completions poisoned"),
        );
        let mut touched: Vec<usize> = Vec::new();
        for completion in completions {
            let Some(&token) = self.by_id.get(&completion.conn_id) else {
                continue; // connection closed before its job finished
            };
            self.complete_on(token, completion.seq, completion.response);
            if !touched.contains(&token) {
                touched.push(token);
            }
        }
        for token in touched {
            self.write_ready(token);
            if self.entry_mut(token).is_some() {
                self.finish_conn_turn(token);
            }
        }
    }

    fn fire_timers(&mut self) {
        let now = self.now_ms();
        let cfg = self.cfg();
        for expiry in self.wheel.pop_due(now) {
            let conn_id = expiry.token as u64;
            let Some(&token) = self.by_id.get(&conn_id) else {
                continue; // connection already closed
            };
            let action = {
                let Some(entry) = self.entry_mut(token) else {
                    continue;
                };
                if entry.state.timer_generation != expiry.generation {
                    continue; // stale entry; the live one is still armed
                }
                let (deadline, kind) = entry.state.deadline(&cfg);
                if deadline > now {
                    // The deadline moved without a generation-visible
                    // state change; re-arm the real one.
                    entry.armed_generation = None;
                    None
                } else {
                    Some(kind)
                }
            };
            match action {
                None => self.rearm(token),
                Some(kind @ (TimeoutKind::Idle | TimeoutKind::Write)) => {
                    self.metrics.count_timeout(kind);
                    self.close_conn(token);
                }
                Some(TimeoutKind::Read) => {
                    self.metrics.count_timeout(TimeoutKind::Read);
                    if let Some(entry) = self.entry_mut(token) {
                        entry.state.timeout_request();
                    }
                    self.write_ready(token);
                    if self.entry_mut(token).is_some() {
                        self.finish_conn_turn(token);
                    }
                }
            }
        }
    }

    fn close_conn(&mut self, token: usize) {
        let Some(entry) = self
            .conns
            .get_mut(token - FIRST_CONN_TOKEN)
            .and_then(Option::take)
        else {
            return;
        };
        let _ = self.poller.deregister(entry.stream.as_raw_fd());
        self.by_id.remove(&entry.id);
        self.free_tokens.push(token);
        self.metrics.open_connections.dec();
        // entry.stream drops here, closing the socket.
    }
}
