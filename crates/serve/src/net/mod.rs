//! `serve::net` — the event-driven serving core.
//!
//! A single reactor thread multiplexes every connection over a
//! level-triggered readiness poller (`epoll(7)` on Linux, `poll(2)`
//! portable fallback — [`sys`]), with per-connection state machines
//! ([`conn`]) doing incremental HTTP/1.1 parsing ([`parser`]), keep-alive
//! and pipelined request handling over reusable buffers, write
//! backpressure, and idle/read/write timeouts ([`timer`]).
//!
//! The reactor replaces only the **I/O edge** of the daemon: requests
//! still route through the same [`crate::server::Service`] — the same
//! bounded admission queue, deadline checks, degradation ladder
//! (429/503/greedy-degrade), and worker pool — so admission semantics
//! are byte-identical to the blocking thread-per-connection reference,
//! which stays available behind [`IoMode::Blocking`] as the conformance
//! baseline (`tests/serve_loop.rs` runs its suite in both modes).
//!
//! Workers never touch sockets: they deliver finished responses into a
//! completion queue and nudge the reactor through a self-pipe waker;
//! the reactor serializes responses in request order per connection.

pub mod conn;
pub mod parser;
pub mod reactor;
pub mod sys;
pub mod timer;

pub use conn::{ConnConfig, ConnState, ReadOutcome, TimeoutKind};
pub use parser::{ParseFault, ParseStep, ParsedRequest, RequestParser, MAX_HEADER_BYTES};
pub use reactor::Reactor;
pub use sys::{Backend, Event, Interest, Poller};
pub use timer::{Expiry, TimerWheel};

/// Which accept path a [`crate::server::Server`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// The event-driven reactor: one thread, epoll/poll readiness,
    /// keep-alive + pipelined HTTP/1.1. The default.
    #[default]
    Event,
    /// The original blocking thread-per-connection path
    /// (`Connection: close`), kept as the conformance reference.
    Blocking,
}

use std::sync::Arc;

use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry};

/// Event-loop series registered into the service's shared
/// [`MetricsRegistry`], so `/metrics` exposes the connection plane next
/// to the admission plane.
pub struct NetMetrics {
    /// Currently open connections.
    pub open_connections: Arc<Gauge>,
    /// Connections accepted over the daemon's lifetime.
    pub accepted_total: Arc<Counter>,
    /// Requests served over an already-used keep-alive connection.
    pub keepalive_reuse_total: Arc<Counter>,
    /// Requests parsed while earlier requests on the same connection
    /// were still in flight (HTTP/1.1 pipelining).
    pub pipelined_requests_total: Arc<Counter>,
    /// Accept→parse→admit→respond wall-clock per request, ms (measured
    /// from request fully parsed to response serialized).
    pub request_lifecycle: Arc<Histogram>,
    timeouts: [Arc<Counter>; 3],
    parse_faults: [Arc<Counter>; 3],
}

impl NetMetrics {
    /// Registers (or re-attaches to) the event-loop series in
    /// `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        let timeout = |kind: TimeoutKind| {
            registry.counter(
                &format!("nshard_net_timeouts_total{{kind=\"{}\"}}", kind.label()),
                "Connections expired by the timeout wheel, by kind",
            )
        };
        let fault = |kind: &str| {
            registry.counter(
                &format!("nshard_net_parse_faults_total{{kind=\"{kind}\"}}"),
                "Connections answered an error and closed for unparseable requests, by kind",
            )
        };
        Self {
            open_connections: registry.gauge(
                "nshard_net_open_connections",
                "Connections currently open on the event loop",
            ),
            accepted_total: registry.counter(
                "nshard_net_accepted_total",
                "Connections accepted by the event loop",
            ),
            keepalive_reuse_total: registry.counter(
                "nshard_net_keepalive_reuse_total",
                "Requests served over an already-used keep-alive connection",
            ),
            pipelined_requests_total: registry.counter(
                "nshard_net_pipelined_requests_total",
                "Requests parsed while earlier requests on the same connection were in flight",
            ),
            request_lifecycle: registry.histogram(
                "nshard_net_request_lifecycle_ms",
                "Accept-to-response-serialized latency per event-loop request, ms",
            ),
            timeouts: [
                timeout(TimeoutKind::Idle),
                timeout(TimeoutKind::Read),
                timeout(TimeoutKind::Write),
            ],
            parse_faults: [
                fault("bad_request"),
                fault("headers_too_large"),
                fault("body_too_large"),
            ],
        }
    }

    /// Counts one connection timeout of `kind` (idle/read/write).
    pub fn count_timeout(&self, kind: TimeoutKind) {
        let i = match kind {
            TimeoutKind::Idle => 0,
            TimeoutKind::Read => 1,
            TimeoutKind::Write => 2,
        };
        self.timeouts[i].inc();
    }

    /// Counts one connection torn down by a parse fault (400/413/431).
    pub fn count_parse_fault(&self, fault: &ParseFault) {
        let i = match fault {
            ParseFault::Malformed(_) => 0,
            ParseFault::HeadersTooLarge { .. } => 1,
            ParseFault::BodyTooLarge { .. } => 2,
        };
        self.parse_faults[i].inc();
    }
}
