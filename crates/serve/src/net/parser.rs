//! Incremental HTTP/1.1 request parsing over reusable buffers.
//!
//! The blocking accept path parses a request with buffered blocking reads
//! ([`crate::http::read_request`]); a readiness reactor cannot block, so
//! this module provides the same grammar as a **resumable** parser: bytes
//! arrive in arbitrary fragments ([`RequestParser::feed`]) and complete
//! requests are popped off as they materialize ([`RequestParser::step`]).
//! Several requests may sit in the buffer at once (HTTP/1.1 pipelining) —
//! `step` keeps yielding until the buffer runs dry.
//!
//! **Conformance.** For any split of a well-formed request stream into
//! fragments — including one fragment per byte — the parsed requests are
//! identical to what the one-shot blocking parser produces on the whole
//! stream. `tests/serve_net.rs` proves this with a proptest over split
//! points and pipelined pairs.
//!
//! Beyond the blocking grammar, the incremental parser enforces two
//! DoS bounds the event loop needs: an oversized header block is refused
//! with `431` ([`ParseFault::HeadersTooLarge`]) and an oversized declared
//! body with `413` ([`ParseFault::BodyTooLarge`]) — a reactor holds many
//! connections in one thread, so per-connection memory must be bounded.

use crate::http::{HttpRequest, MAX_BODY_BYTES};

/// Upper bound on the request line + header block, bytes. Connections
/// declaring more are answered `431 Request Header Fields Too Large`.
pub const MAX_HEADER_BYTES: usize = 32 << 10;

/// A request parsed off the stream, plus the connection facts the
/// reactor needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRequest {
    /// The request, identical to what the one-shot parser yields.
    pub request: HttpRequest,
    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub keep_alive: bool,
}

/// Why the stream cannot be parsed further. All faults are fatal for the
/// connection: the reactor answers once and closes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseFault {
    /// The request line or a header is not valid HTTP/1.1 (`400`).
    Malformed(String),
    /// The header block exceeds [`MAX_HEADER_BYTES`] (`431`).
    HeadersTooLarge {
        /// Bytes buffered without finding the end of the headers.
        buffered: usize,
    },
    /// The declared `Content-Length` exceeds
    /// [`crate::http::MAX_BODY_BYTES`] (`413`).
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
    },
}

impl ParseFault {
    /// The HTTP status the reactor answers before closing.
    pub fn status(&self) -> u16 {
        match self {
            ParseFault::Malformed(_) => 400,
            ParseFault::HeadersTooLarge { .. } => 431,
            ParseFault::BodyTooLarge { .. } => 413,
        }
    }

    /// The stable error kind for the JSON error body.
    pub fn kind(&self) -> &'static str {
        match self {
            ParseFault::Malformed(_) => "bad_request",
            ParseFault::HeadersTooLarge { .. } => "headers_too_large",
            ParseFault::BodyTooLarge { .. } => "body_too_large",
        }
    }
}

impl std::fmt::Display for ParseFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseFault::Malformed(reason) => write!(f, "malformed request: {reason}"),
            ParseFault::HeadersTooLarge { buffered } => {
                write!(f, "{buffered} header bytes exceed {MAX_HEADER_BYTES}")
            }
            ParseFault::BodyTooLarge { declared } => {
                write!(
                    f,
                    "declared body of {declared} bytes exceeds {MAX_BODY_BYTES}"
                )
            }
        }
    }
}

/// One step of incremental parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseStep {
    /// The buffer holds no complete request yet; feed more bytes.
    Incomplete,
    /// One complete request was consumed from the buffer.
    Request(ParsedRequest),
    /// The stream is unparseable; answer [`ParseFault::status`] and close.
    Fault(ParseFault),
}

/// The resumable request parser. One per connection, reused across
/// keep-alive requests — the internal buffer is compacted, not
/// reallocated, between requests.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily to amortize copies).
    start: usize,
    /// A fault is sticky: once the stream is broken there is no way to
    /// resynchronize on request boundaries.
    fault: Option<ParseFault>,
}

impl RequestParser {
    /// An empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read bytes to the parse buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether the buffer holds the start of a not-yet-complete request —
    /// the "mid-request" state the read timeout (slow-loris defence)
    /// applies to.
    pub fn mid_request(&self) -> bool {
        self.buffered() > 0 && self.fault.is_none()
    }

    /// Drops the consumed prefix once it dominates the buffer, keeping
    /// amortized O(1) per byte.
    fn compact(&mut self) {
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Attempts to pop one complete request off the buffer. Call in a
    /// loop after [`RequestParser::feed`]: pipelined requests yield one
    /// [`ParseStep::Request`] each until [`ParseStep::Incomplete`].
    pub fn step(&mut self) -> ParseStep {
        if let Some(fault) = &self.fault {
            return ParseStep::Fault(fault.clone());
        }
        match self.parse_one() {
            Ok(Some(parsed)) => ParseStep::Request(parsed),
            Ok(None) => ParseStep::Incomplete,
            Err(fault) => {
                self.fault = Some(fault.clone());
                ParseStep::Fault(fault)
            }
        }
    }

    /// Parses one request if completely buffered; `Ok(None)` = need more.
    fn parse_one(&mut self) -> Result<Option<ParsedRequest>, ParseFault> {
        let bytes = &self.buf[self.start..];
        if bytes.is_empty() {
            return Ok(None);
        }
        // Locate the blank line ending the headers. Lines end at `\n`
        // with an optional preceding `\r` — exactly the grammar the
        // blocking path's `read_line` + `trim_end` accepts.
        let Some(header_end) = find_header_end(bytes) else {
            if bytes.len() > MAX_HEADER_BYTES {
                return Err(ParseFault::HeadersTooLarge {
                    buffered: bytes.len(),
                });
            }
            return Ok(None);
        };
        if header_end > MAX_HEADER_BYTES {
            return Err(ParseFault::HeadersTooLarge {
                buffered: header_end,
            });
        }

        let head = &bytes[..header_end];
        let mut lines = head.split(|&b| b == b'\n').map(|line| {
            // `trim_end` semantics of the blocking path: strip trailing
            // CR and whitespace.
            let mut line = line;
            while let Some((&last, rest)) = line.split_last() {
                if last == b'\r' || last.is_ascii_whitespace() {
                    line = rest;
                } else {
                    break;
                }
            }
            line
        });

        let request_line = lines.next().unwrap_or_default();
        let request_line = String::from_utf8_lossy(request_line);
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| ParseFault::Malformed("empty request line".into()))?
            .to_ascii_uppercase();
        let path = parts
            .next()
            .ok_or_else(|| ParseFault::Malformed("request line has no path".into()))?
            .to_string();
        let version = parts.next().unwrap_or("HTTP/1.1").to_ascii_uppercase();

        let mut content_length = 0usize;
        let mut connection: Option<String> = None;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let line = String::from_utf8_lossy(line);
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| ParseFault::Malformed("bad Content-Length".into()))?;
                } else if name.eq_ignore_ascii_case("connection") {
                    connection = Some(value.trim().to_ascii_lowercase());
                }
            }
        }
        if content_length > MAX_BODY_BYTES {
            return Err(ParseFault::BodyTooLarge {
                declared: content_length,
            });
        }

        let body_start = header_end;
        if bytes.len() < body_start + content_length {
            return Ok(None); // body still arriving
        }
        let body = bytes[body_start..body_start + content_length].to_vec();
        self.start += body_start + content_length;
        self.compact();

        let keep_alive = match connection.as_deref() {
            Some("close") => false,
            Some(c) if c.contains("keep-alive") => true,
            _ => version != "HTTP/1.0",
        };
        Ok(Some(ParsedRequest {
            request: HttpRequest { method, path, body },
            keep_alive,
        }))
    }
}

/// Index just past the header-terminating blank line, if buffered: the
/// first `\n` whose line (after stripping a trailing `\r`) is empty.
fn find_header_end(bytes: &[u8]) -> Option<usize> {
    let mut line_start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            let line = &bytes[line_start..i];
            let line = match line.split_last() {
                Some((&b'\r', rest)) => rest,
                _ => line,
            };
            if line.is_empty() {
                return Some(i + 1);
            }
            line_start = i + 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(raw: &[u8]) -> ParseStep {
        let mut p = RequestParser::new();
        p.feed(raw);
        p.step()
    }

    #[test]
    fn parses_a_simple_post_in_one_shot() {
        let raw = b"POST /v1/plan HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"x\":1}";
        let ParseStep::Request(parsed) = full(raw) else {
            panic!("expected a request");
        };
        assert_eq!(parsed.request.method, "POST");
        assert_eq!(parsed.request.path, "/v1/plan");
        assert_eq!(parsed.request.body, b"{\"x\":1}");
        assert!(parsed.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_byte_at_a_time() {
        let raw = b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n";
        let mut p = RequestParser::new();
        for (i, &b) in raw.iter().enumerate() {
            p.feed(&[b]);
            let step = p.step();
            if i + 1 < raw.len() {
                assert_eq!(step, ParseStep::Incomplete, "at byte {i}");
            } else {
                let ParseStep::Request(parsed) = step else {
                    panic!("expected a request at the last byte");
                };
                assert_eq!(parsed.request.path, "/health");
            }
        }
    }

    #[test]
    fn pops_pipelined_requests_in_order() {
        let raw =
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n";
        let mut p = RequestParser::new();
        p.feed(raw);
        let mut paths = Vec::new();
        while let ParseStep::Request(r) = p.step() {
            paths.push(r.request.path);
        }
        assert_eq!(paths, vec!["/a", "/b", "/c"]);
        assert_eq!(p.step(), ParseStep::Incomplete);
    }

    #[test]
    fn connection_close_and_http10_semantics() {
        let ParseStep::Request(r) = full(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n") else {
            panic!()
        };
        assert!(!r.keep_alive);
        let ParseStep::Request(r) = full(b"GET / HTTP/1.0\r\n\r\n") else {
            panic!()
        };
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
        let ParseStep::Request(r) = full(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
        else {
            panic!()
        };
        assert!(r.keep_alive);
    }

    #[test]
    fn faults_are_sticky_and_typed() {
        let mut p = RequestParser::new();
        p.feed(b"\r\n"); // empty request line
        let ParseStep::Fault(f) = p.step() else {
            panic!("empty request line must fault")
        };
        assert_eq!(f.status(), 400);
        // The fault persists no matter what arrives afterwards.
        p.feed(b"GET / HTTP/1.1\r\n\r\n");
        assert!(matches!(p.step(), ParseStep::Fault(_)));
    }

    #[test]
    fn oversized_headers_fault_431() {
        let mut p = RequestParser::new();
        p.feed(b"GET / HTTP/1.1\r\nX-Fill: ");
        p.feed(&vec![b'a'; MAX_HEADER_BYTES + 16]);
        let ParseStep::Fault(f) = p.step() else {
            panic!("oversized headers must fault")
        };
        assert_eq!(f.status(), 431);
        assert_eq!(f.kind(), "headers_too_large");
    }

    #[test]
    fn oversized_declared_body_faults_413() {
        let raw = format!(
            "POST /v1/plan HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let ParseStep::Fault(f) = full(raw.as_bytes()) else {
            panic!("oversized body must fault")
        };
        assert_eq!(f.status(), 413);
    }

    #[test]
    fn bad_content_length_faults_400() {
        let ParseStep::Fault(f) = full(b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n") else {
            panic!("bad content-length must fault")
        };
        assert_eq!(f.status(), 400);
    }

    #[test]
    fn lf_only_line_endings_parse_like_the_blocking_path() {
        let ParseStep::Request(r) = full(b"POST /p HTTP/1.1\nContent-Length: 2\n\nok") else {
            panic!()
        };
        assert_eq!(r.request.body, b"ok");
    }

    #[test]
    fn buffer_compacts_across_many_keepalive_requests() {
        let mut p = RequestParser::new();
        let raw = b"GET /spin HTTP/1.1\r\n\r\n";
        for _ in 0..4096 {
            p.feed(raw);
            assert!(matches!(p.step(), ParseStep::Request(_)));
        }
        assert!(
            p.buf.capacity() < 64 * raw.len(),
            "buffer must not grow with request count (cap {})",
            p.buf.capacity()
        );
    }
}
