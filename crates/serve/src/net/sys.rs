//! Readiness polling over raw OS primitives: `epoll(7)` on Linux, with a
//! portable `poll(2)` fallback — no external crates, just `extern "C"`
//! declarations against the C library the process is already linked to.
//!
//! This is the **only** module in the crate allowed to use `unsafe`
//! (`lib.rs` denies it everywhere else); every unsafe block is a direct
//! syscall wrapper with the invariants stated inline.
//!
//! Both backends present the same level-triggered [`Poller`] API:
//! register a file descriptor with a `usize` token and an [`Interest`],
//! then [`Poller::wait`] for [`Event`]s. Level-triggered semantics keep
//! the reactor simple: a readable socket keeps reporting readable until
//! drained, so a partial read never strands a connection.

#![allow(unsafe_code)]

use std::collections::HashMap;
use std::ffi::c_int;
use std::io;
use std::os::fd::RawFd;

/// What readiness a registration cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Self = Self {
        read: true,
        write: false,
    };
    /// Write-only interest.
    pub const WRITE: Self = Self {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Self = Self {
        read: true,
        write: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// Readable now (includes peer hang-up: the next read returns 0).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Error/hang-up condition; the owner should read/write to discover
    /// the error and close.
    pub error: bool,
}

/// Which kernel facility backs the poller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `epoll(7)` — Linux only.
    Epoll,
    /// `poll(2)` — portable fallback, O(n) per wait.
    Poll,
}

/// A level-triggered readiness poller over one of the [`Backend`]s.
#[derive(Debug)]
pub enum Poller {
    /// Backed by `epoll(7)`.
    #[cfg(target_os = "linux")]
    Epoll(Epoll),
    /// Backed by `poll(2)`.
    Poll(PollSet),
}

impl Poller {
    /// The platform default: epoll on Linux, `poll(2)` elsewhere.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_create1` failure, if any.
    pub fn new() -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            Ok(Self::Epoll(Epoll::new()?))
        }
        #[cfg(not(target_os = "linux"))]
        {
            Ok(Self::Poll(PollSet::new()))
        }
    }

    /// A poller over an explicit backend (tests run both on Linux).
    ///
    /// # Errors
    ///
    /// `Unsupported` when asking for epoll off-Linux; `epoll_create1`
    /// failures otherwise.
    pub fn with_backend(backend: Backend) -> io::Result<Self> {
        match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => Ok(Self::Epoll(Epoll::new()?)),
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll is Linux-only",
            )),
            Backend::Poll => Ok(Self::Poll(PollSet::new())),
        }
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match self {
            #[cfg(target_os = "linux")]
            Self::Epoll(_) => Backend::Epoll,
            Self::Poll(_) => Backend::Poll,
        }
    }

    /// Starts watching `fd` under `token`.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure; the `poll` backend is
    /// infallible here.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Self::Epoll(e) => e.ctl(EPOLL_CTL_ADD, fd, token, interest),
            Self::Poll(p) => {
                p.register(fd, token, interest);
                Ok(())
            }
        }
    }

    /// Changes the interest set of an already-registered fd.
    ///
    /// # Errors
    ///
    /// As for [`Poller::register`].
    pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Self::Epoll(e) => e.ctl(EPOLL_CTL_MOD, fd, token, interest),
            Self::Poll(p) => {
                p.register(fd, token, interest);
                Ok(())
            }
        }
    }

    /// Stops watching `fd`.
    ///
    /// # Errors
    ///
    /// As for [`Poller::register`].
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Self::Epoll(e) => e.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READ),
            Self::Poll(p) => {
                p.deregister(fd);
                Ok(())
            }
        }
    }

    /// Blocks up to `timeout_ms` (`None` = forever) for readiness,
    /// appending events to `out` (which is cleared first). An interrupted
    /// wait (`EINTR`) returns cleanly with no events.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_wait`/`poll` failure.
    pub fn wait(&mut self, timeout_ms: Option<u64>, out: &mut Vec<Event>) -> io::Result<()> {
        out.clear();
        let timeout: c_int = match timeout_ms {
            // Negative means "block forever" for both syscalls.
            None => -1,
            Some(ms) => c_int::try_from(ms).unwrap_or(c_int::MAX),
        };
        match self {
            #[cfg(target_os = "linux")]
            Self::Epoll(e) => e.wait(timeout, out),
            Self::Poll(p) => p.wait(timeout, out),
        }
    }
}

// ---------------------------------------------------------------------------
// epoll(7) backend (Linux)
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
const EPOLLIN: u32 = 0x001;
#[cfg(target_os = "linux")]
const EPOLLOUT: u32 = 0x004;
#[cfg(target_os = "linux")]
const EPOLLERR: u32 = 0x008;
#[cfg(target_os = "linux")]
const EPOLLHUP: u32 = 0x010;
#[cfg(target_os = "linux")]
const EPOLLRDHUP: u32 = 0x2000;
#[cfg(target_os = "linux")]
const EPOLL_CTL_ADD: c_int = 1;
#[cfg(target_os = "linux")]
const EPOLL_CTL_DEL: c_int = 2;
#[cfg(target_os = "linux")]
const EPOLL_CTL_MOD: c_int = 3;
#[cfg(target_os = "linux")]
const EPOLL_CLOEXEC: c_int = 0o2000000;

/// `struct epoll_event` — packed on x86-64, exactly as `<sys/epoll.h>`
/// declares it.
#[cfg(target_os = "linux")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEventRaw {
    events: u32,
    data: u64,
}

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEventRaw) -> c_int;
    fn epoll_wait(
        epfd: c_int,
        events: *mut EpollEventRaw,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
}

extern "C" {
    fn close(fd: c_int) -> c_int;
}

/// The `epoll(7)` instance.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub struct Epoll {
    epfd: RawFd,
    buf: Vec<EpollEventRaw>,
}

#[cfg(target_os = "linux")]
impl std::fmt::Debug for EpollEventRaw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let events = self.events;
        write!(f, "EpollEventRaw({events:#x})")
    }
}

#[cfg(target_os = "linux")]
impl Epoll {
    fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes a flags integer and returns a new
        // fd or -1; no pointers are involved.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            epfd,
            buf: vec![EpollEventRaw { events: 0, data: 0 }; 256],
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut events = EPOLLRDHUP;
        if interest.read {
            events |= EPOLLIN;
        }
        if interest.write {
            events |= EPOLLOUT;
        }
        let mut ev = EpollEventRaw {
            events,
            data: token as u64,
        };
        // SAFETY: `ev` is a valid epoll_event for the duration of the
        // call; the kernel copies it and keeps no reference. For
        // EPOLL_CTL_DEL the pointer is ignored on modern kernels but
        // passing a valid one is always allowed.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, timeout: c_int, out: &mut Vec<Event>) -> io::Result<()> {
        // SAFETY: `buf` is a live, properly sized allocation of
        // epoll_event; the kernel writes at most `len` entries.
        let n = unsafe {
            epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as c_int,
                timeout,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for raw in &self.buf[..n as usize] {
            let events = raw.events;
            out.push(Event {
                token: raw.data as usize,
                readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                writable: events & EPOLLOUT != 0,
                error: events & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: closing the epoll fd we own; double-close is impossible
        // because Drop runs once.
        unsafe {
            close(self.epfd);
        }
    }
}

// ---------------------------------------------------------------------------
// poll(2) fallback (portable)
// ---------------------------------------------------------------------------

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

/// `struct pollfd`, exactly as `<poll.h>` declares it.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct PollFdRaw {
    fd: c_int,
    events: i16,
    revents: i16,
}

#[cfg(target_os = "macos")]
type Nfds = std::ffi::c_uint;
#[cfg(not(target_os = "macos"))]
type Nfds = std::ffi::c_ulong;

extern "C" {
    fn poll(fds: *mut PollFdRaw, nfds: Nfds, timeout: c_int) -> c_int;
}

/// The `poll(2)` fallback: an fd list rebuilt per wait — O(n) per call,
/// fine for the fd counts this daemon sees off-Linux.
#[derive(Debug, Default)]
pub struct PollSet {
    entries: Vec<(RawFd, usize, Interest)>,
    index: HashMap<RawFd, usize>,
}

impl PollSet {
    fn new() -> Self {
        Self::default()
    }

    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) {
        match self.index.get(&fd) {
            Some(&i) => self.entries[i] = (fd, token, interest),
            None => {
                self.index.insert(fd, self.entries.len());
                self.entries.push((fd, token, interest));
            }
        }
    }

    fn deregister(&mut self, fd: RawFd) {
        if let Some(i) = self.index.remove(&fd) {
            self.entries.swap_remove(i);
            if let Some(&(moved_fd, _, _)) = self.entries.get(i) {
                self.index.insert(moved_fd, i);
            }
        }
    }

    fn wait(&mut self, timeout: c_int, out: &mut Vec<Event>) -> io::Result<()> {
        if self.entries.is_empty() {
            // Nothing registered: poll(NULL, 0, ...) is legal but a plain
            // sleep serves the same purpose without a syscall wrapper.
            if timeout > 0 {
                std::thread::sleep(std::time::Duration::from_millis(timeout as u64));
            }
            return Ok(());
        }
        let mut fds: Vec<PollFdRaw> = self
            .entries
            .iter()
            .map(|&(fd, _, interest)| {
                let mut events = 0i16;
                if interest.read {
                    events |= POLLIN;
                }
                if interest.write {
                    events |= POLLOUT;
                }
                PollFdRaw {
                    fd,
                    events,
                    revents: 0,
                }
            })
            .collect();
        // SAFETY: `fds` is a live, contiguous pollfd array of exactly
        // `len` entries; the kernel reads `events` and writes `revents`
        // within bounds.
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for (raw, &(_, token, _)) in fds.iter().zip(&self.entries) {
            if raw.revents == 0 {
                continue;
            }
            out.push(Event {
                token,
                readable: raw.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                writable: raw.revents & POLLOUT != 0,
                error: raw.revents & (POLLERR | POLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn backends() -> Vec<Backend> {
        #[cfg(target_os = "linux")]
        {
            vec![Backend::Epoll, Backend::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![Backend::Poll]
        }
    }

    #[test]
    fn reports_readable_once_bytes_arrive() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (mut a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

            let mut events = Vec::new();
            poller.wait(Some(0), &mut events).unwrap();
            assert!(events.is_empty(), "{backend:?}: nothing written yet");

            a.write_all(b"x").unwrap();
            poller.wait(Some(1_000), &mut events).unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);

            // Level-triggered: still readable until drained.
            poller.wait(Some(0), &mut events).unwrap();
            assert!(events.iter().any(|e| e.readable), "{backend:?}");
            let mut buf = [0u8; 8];
            let _ = std::io::Read::read(&mut (&b), &mut buf);
            poller.wait(Some(0), &mut events).unwrap();
            assert!(events.is_empty(), "{backend:?}: drained");
        }
    }

    #[test]
    fn write_interest_and_deregister() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (a, _b) = UnixStream::pair().unwrap();
            a.set_nonblocking(true).unwrap();
            poller.register(a.as_raw_fd(), 1, Interest::BOTH).unwrap();

            let mut events = Vec::new();
            poller.wait(Some(1_000), &mut events).unwrap();
            assert!(
                events.iter().any(|e| e.token == 1 && e.writable),
                "{backend:?}: an idle socket is writable"
            );

            poller.modify(a.as_raw_fd(), 1, Interest::READ).unwrap();
            poller.wait(Some(0), &mut events).unwrap();
            assert!(
                !events.iter().any(|e| e.writable),
                "{backend:?}: write interest dropped"
            );

            poller.deregister(a.as_raw_fd()).unwrap();
            poller.wait(Some(0), &mut events).unwrap();
            assert!(events.is_empty(), "{backend:?}: deregistered");
        }
    }

    #[test]
    fn peer_hangup_reports_readable() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            poller.register(b.as_raw_fd(), 3, Interest::READ).unwrap();
            drop(a);
            let mut events = Vec::new();
            poller.wait(Some(1_000), &mut events).unwrap();
            assert!(
                events.iter().any(|e| e.token == 3 && e.readable),
                "{backend:?}: hangup must surface as readable (read -> 0)"
            );
            let mut buf = [0u8; 4];
            assert_eq!((&b).read(&mut buf).unwrap(), 0);
        }
    }
}
