//! Per-connection state machine: parsing, pipelined response ordering,
//! write buffering with backpressure, and timeout accounting.
//!
//! The machine is **I/O-free** — the reactor feeds it bytes it read and
//! drains bytes it wants written — so every edge (pipelining, reordering,
//! backpressure, slow-loris expiry) is unit-testable with a manual clock
//! and no sockets.
//!
//! # Pipelining and ordering
//!
//! HTTP/1.1 pipelining means several requests can be parsed before the
//! first response is ready, and the worker pool may finish them **out of
//! order** — but responses must leave the socket in request order. Each
//! parsed request gets a per-connection sequence number; completions
//! park in a `BTreeMap` until the next-in-order response arrives, then
//! everything contiguous serializes at once.
//!
//! # Backpressure
//!
//! A connection stops being read (`want_read() == false`) while it has
//! [`ConnConfig::max_pipeline`] requests in flight or more than
//! [`ConnConfig::write_buf_limit`] unsent response bytes — the client
//! cannot force unbounded daemon memory by pipelining faster than it
//! reads responses. The bytes stay in the kernel socket buffer, which
//! pushes TCP flow control back to the sender.
//!
//! # Timeouts
//!
//! Exactly one deadline is live per connection at a time
//! ([`ConnState::deadline`]): write-stalled connections expire on the
//! write timeout, mid-request connections on the read timeout (answered
//! `408` — the slow-loris defence), idle keep-alive connections on the
//! idle timeout. A generation counter makes stale timer entries
//! detectable ([`super::timer::TimerWheel`]).

use std::collections::BTreeMap;

use crate::http::{HttpRequest, HttpResponse};

use super::parser::{ParseFault, ParseStep, RequestParser};

/// Tuning knobs for the event-driven connection handling.
#[derive(Debug, Clone)]
pub struct ConnConfig {
    /// Close a keep-alive connection idle this long, ms.
    pub idle_timeout_ms: u64,
    /// Answer `408` when a started request stalls this long without a
    /// byte of progress, ms (slow-loris defence).
    pub read_timeout_ms: u64,
    /// Close a connection that accepts no response bytes for this long,
    /// ms.
    pub write_timeout_ms: u64,
    /// Requests admitted per connection before parsing pauses
    /// (pipelining depth bound).
    pub max_pipeline: usize,
    /// Unsent response bytes buffered before reading pauses.
    pub write_buf_limit: usize,
}

impl Default for ConnConfig {
    fn default() -> Self {
        Self {
            idle_timeout_ms: 60_000,
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            max_pipeline: 32,
            write_buf_limit: 1 << 20,
        }
    }
}

/// Which timeout a deadline belongs to — determines the expiry action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutKind {
    /// Idle keep-alive connection: close silently.
    Idle,
    /// Mid-request stall: answer `408 Request Timeout`, then close.
    Read,
    /// Write-stalled peer: close (nothing else can be delivered).
    Write,
}

impl TimeoutKind {
    /// Stable label for the timeout counter on `/metrics`.
    pub fn label(self) -> &'static str {
        match self {
            TimeoutKind::Idle => "idle",
            TimeoutKind::Read => "read",
            TimeoutKind::Write => "write",
        }
    }
}

/// What [`ConnState::on_bytes`] extracted from freshly read bytes.
#[derive(Debug, Default)]
pub struct ReadOutcome {
    /// Complete requests, in arrival order, each with its response
    /// sequence number (pass back to [`ConnState::complete`]).
    pub requests: Vec<(u64, HttpRequest)>,
    /// A parse fault; the connection already buffered the error response
    /// and will close once it flushes.
    pub fault: Option<ParseFault>,
    /// How many of `requests` reused a connection that had already
    /// served at least one request (keep-alive reuse metric).
    pub keepalive_reuse: u64,
    /// How many of `requests` arrived while earlier requests from this
    /// connection were still in flight (pipelining metric).
    pub pipelined: u64,
}

/// The per-connection state machine.
#[derive(Debug)]
pub struct ConnState {
    parser: RequestParser,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Sequence number the next parsed request will get.
    next_seq: u64,
    /// Sequence number of the next response to serialize.
    next_to_write: u64,
    /// Out-of-order completions parked until their turn.
    parked: BTreeMap<u64, HttpResponse>,
    /// Parsed-but-unanswered request count (admission + parked).
    inflight: usize,
    /// Requests fully served on this connection.
    served: u64,
    /// Keep-alive decision per in-flight sequence.
    keep_alive: BTreeMap<u64, bool>,
    /// No further requests will be read (Connection: close seen, fault,
    /// or timeout); close once flushed and drained.
    closing: bool,
    /// Peer closed its half (read returned 0); never read again.
    peer_closed: bool,
    last_read_progress_ms: u64,
    last_write_progress_ms: u64,
    last_activity_ms: u64,
    /// Bumped whenever the effective deadline may have moved; stale
    /// timer entries carry an older value.
    pub timer_generation: u64,
}

impl ConnState {
    /// A fresh connection accepted at `now_ms`.
    pub fn new(now_ms: u64) -> Self {
        Self {
            parser: RequestParser::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            next_seq: 0,
            next_to_write: 0,
            parked: BTreeMap::new(),
            inflight: 0,
            served: 0,
            keep_alive: BTreeMap::new(),
            closing: false,
            peer_closed: false,
            last_read_progress_ms: now_ms,
            last_write_progress_ms: now_ms,
            last_activity_ms: now_ms,
            timer_generation: 0,
        }
    }

    /// Feeds freshly read bytes, extracting complete requests up to the
    /// pipeline bound. A parse fault buffers its error response
    /// immediately and marks the connection closing.
    pub fn on_bytes(&mut self, bytes: &[u8], cfg: &ConnConfig, now_ms: u64) -> ReadOutcome {
        self.touch_read(now_ms);
        self.parser.feed(bytes);
        self.drain_parser(cfg)
    }

    /// Pops parsed requests while the pipeline has room — also called
    /// after completions free pipeline slots, since bytes may already be
    /// buffered.
    pub fn drain_parser(&mut self, cfg: &ConnConfig) -> ReadOutcome {
        let mut outcome = ReadOutcome::default();
        while !self.closing && self.inflight < cfg.max_pipeline {
            match self.parser.step() {
                ParseStep::Incomplete => break,
                ParseStep::Request(parsed) => {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.inflight += 1;
                    if self.served > 0 {
                        outcome.keepalive_reuse += 1;
                    }
                    if self.inflight > 1 {
                        outcome.pipelined += 1;
                    }
                    self.keep_alive.insert(seq, parsed.keep_alive);
                    if !parsed.keep_alive {
                        // Connection: close — nothing after this request
                        // will be answered, so stop parsing.
                        self.closing = true;
                    }
                    outcome.requests.push((seq, parsed.request));
                }
                ParseStep::Fault(fault) => {
                    let response = HttpResponse::json(
                        fault.status(),
                        crate::api::ErrorBody::new(fault.kind(), fault.to_string()).to_json(),
                    );
                    self.write_buf.extend_from_slice(&response.to_bytes(false));
                    self.closing = true;
                    outcome.fault = Some(fault);
                    break;
                }
            }
        }
        self.timer_generation += 1;
        outcome
    }

    /// Records that the peer closed its read half; the connection still
    /// flushes buffered responses, then closes.
    pub fn on_peer_closed(&mut self) {
        self.peer_closed = true;
        self.closing = true;
        if self.inflight == 0 {
            // Nothing left to answer: drop parked state so should_close
            // fires as soon as the buffer flushes.
            self.parked.clear();
        }
        self.timer_generation += 1;
    }

    /// Delivers the response for request `seq`; serializes every
    /// response that is now next-in-order into the write buffer.
    pub fn complete(&mut self, seq: u64, response: HttpResponse) {
        self.parked.insert(seq, response);
        while let Some(response) = self.parked.remove(&self.next_to_write) {
            let keep_alive =
                self.keep_alive.remove(&self.next_to_write).unwrap_or(false) && !self.peer_closed;
            self.write_buf
                .extend_from_slice(&response.to_bytes(keep_alive));
            self.next_to_write += 1;
            self.inflight -= 1;
            self.served += 1;
        }
        self.timer_generation += 1;
    }

    /// Buffers a `408 Request Timeout` for a stalled partial request and
    /// marks the connection closing (the read-timeout expiry action).
    pub fn timeout_request(&mut self) {
        let response = HttpResponse::json(
            408,
            crate::api::ErrorBody::new(
                "request_timeout",
                "request not completed within the read timeout".to_string(),
            )
            .to_json(),
        );
        self.write_buf.extend_from_slice(&response.to_bytes(false));
        self.closing = true;
        self.timer_generation += 1;
    }

    /// The unsent portion of the write buffer.
    pub fn writable(&self) -> &[u8] {
        &self.write_buf[self.write_pos..]
    }

    /// Records `n` bytes accepted by the socket; compacts once drained.
    pub fn advance_write(&mut self, n: usize, now_ms: u64) {
        self.write_pos += n;
        if self.write_pos >= self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
        self.last_write_progress_ms = now_ms;
        self.last_activity_ms = now_ms;
        self.timer_generation += 1;
    }

    /// Whether the reactor should keep read interest registered.
    pub fn want_read(&self, cfg: &ConnConfig) -> bool {
        !self.closing
            && !self.peer_closed
            && self.inflight < cfg.max_pipeline
            && self.pending_write_bytes() < cfg.write_buf_limit
    }

    /// Whether unsent response bytes are waiting on the socket.
    pub fn want_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// Unsent response bytes currently buffered.
    pub fn pending_write_bytes(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Requests parsed but not yet answered.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Requests fully served over this connection's lifetime.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Whether the connection is done: closing, nothing in flight, and
    /// the write buffer flushed.
    pub fn should_close(&self) -> bool {
        (self.closing && self.inflight == 0 && !self.want_write())
            || (self.peer_closed && !self.want_write() && self.inflight == 0)
    }

    /// The single effective deadline and its kind, under `cfg`.
    pub fn deadline(&self, cfg: &ConnConfig) -> (u64, TimeoutKind) {
        if self.want_write() {
            (
                self.last_write_progress_ms + cfg.write_timeout_ms,
                TimeoutKind::Write,
            )
        } else if self.parser.mid_request() {
            (
                self.last_read_progress_ms + cfg.read_timeout_ms,
                TimeoutKind::Read,
            )
        } else {
            (
                self.last_activity_ms + cfg.idle_timeout_ms,
                TimeoutKind::Idle,
            )
        }
    }

    fn touch_read(&mut self, now_ms: u64) {
        self.last_read_progress_ms = now_ms;
        self.last_activity_ms = now_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ConnConfig {
        ConnConfig::default()
    }

    fn get(path: &str) -> Vec<u8> {
        format!("GET {path} HTTP/1.1\r\n\r\n").into_bytes()
    }

    #[test]
    fn single_request_round_trip_keeps_alive() {
        let mut conn = ConnState::new(0);
        let out = conn.on_bytes(&get("/health"), &cfg(), 0);
        assert_eq!(out.requests.len(), 1);
        assert_eq!(out.requests[0].0, 0);
        assert_eq!(conn.inflight(), 1);
        conn.complete(0, HttpResponse::text(200, "ok".into()));
        assert!(conn.want_write());
        let text = String::from_utf8_lossy(conn.writable()).to_string();
        assert!(text.contains("Connection: keep-alive"));
        let n = conn.writable().len();
        conn.advance_write(n, 1);
        assert!(!conn.should_close(), "keep-alive stays open");
        assert_eq!(conn.served(), 1);
    }

    #[test]
    fn out_of_order_completions_serialize_in_request_order() {
        let mut conn = ConnState::new(0);
        let mut raw = get("/a");
        raw.extend_from_slice(&get("/b"));
        raw.extend_from_slice(&get("/c"));
        let out = conn.on_bytes(&raw, &cfg(), 0);
        assert_eq!(out.requests.len(), 3);
        assert_eq!(out.pipelined, 2, "second and third arrived pipelined");

        conn.complete(2, HttpResponse::text(200, "C".into()));
        assert!(!conn.want_write(), "seq 0 not done yet; 2 parks");
        conn.complete(0, HttpResponse::text(200, "A".into()));
        conn.complete(1, HttpResponse::text(200, "B".into()));
        let text = String::from_utf8_lossy(conn.writable()).to_string();
        // Bodies are "A"/"B"/"C", each right after its blank line.
        let (a, b, c) = (
            text.find("\r\n\r\nA").unwrap(),
            text.find("\r\n\r\nB").unwrap(),
            text.find("\r\n\r\nC").unwrap(),
        );
        assert!(a < b && b < c, "responses leave in request order");
        assert_eq!(conn.inflight(), 0);
    }

    #[test]
    fn connection_close_request_stops_parsing_and_closes_after_flush() {
        let mut conn = ConnState::new(0);
        let mut raw = b"GET /a HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec();
        raw.extend_from_slice(&get("/never-answered"));
        let out = conn.on_bytes(&raw, &cfg(), 0);
        assert_eq!(out.requests.len(), 1, "nothing after a close request");
        conn.complete(0, HttpResponse::text(200, "bye".into()));
        let text = String::from_utf8_lossy(conn.writable()).to_string();
        assert!(text.contains("Connection: close"));
        let n = conn.writable().len();
        conn.advance_write(n, 1);
        assert!(conn.should_close());
    }

    #[test]
    fn pipeline_bound_pauses_parsing_until_completions_free_slots() {
        let mut conn = ConnState::new(0);
        let small = ConnConfig {
            max_pipeline: 2,
            ..cfg()
        };
        let mut raw = Vec::new();
        for p in ["/1", "/2", "/3", "/4"] {
            raw.extend_from_slice(&get(p));
        }
        let out = conn.on_bytes(&raw, &small, 0);
        assert_eq!(out.requests.len(), 2, "parsing pauses at the bound");
        assert!(!conn.want_read(&small), "backpressure: reads pause");

        conn.complete(0, HttpResponse::text(200, "ok".into()));
        let out = conn.drain_parser(&small);
        assert_eq!(out.requests.len(), 1, "a freed slot resumes parsing");
        assert_eq!(out.requests[0].0, 2);
    }

    #[test]
    fn write_buffer_backpressure_pauses_reading() {
        let mut conn = ConnState::new(0);
        let tight = ConnConfig {
            write_buf_limit: 64,
            ..cfg()
        };
        conn.on_bytes(&get("/big"), &tight, 0);
        conn.complete(0, HttpResponse::text(200, "x".repeat(256)));
        assert!(conn.pending_write_bytes() > 64);
        assert!(!conn.want_read(&tight));
        let n = conn.writable().len();
        conn.advance_write(n, 1);
        assert!(conn.want_read(&tight), "flushing resumes reads");
    }

    #[test]
    fn deadline_tracks_connection_phase() {
        let c = cfg();
        let mut conn = ConnState::new(1_000);
        // Fresh: idle deadline.
        assert_eq!(
            conn.deadline(&c),
            (1_000 + c.idle_timeout_ms, TimeoutKind::Idle)
        );
        // Partial request at t=2000: read deadline from last progress.
        conn.on_bytes(b"GET /slow HTT", &c, 2_000);
        assert_eq!(
            conn.deadline(&c),
            (2_000 + c.read_timeout_ms, TimeoutKind::Read)
        );
        // Complete it; an unflushed response means a write deadline.
        conn.on_bytes(b"P/1.1\r\n\r\n", &c, 3_000);
        conn.complete(0, HttpResponse::text(200, "ok".into()));
        assert_eq!(conn.deadline(&c).1, TimeoutKind::Write);
        // Flushed: idle again, from the flush time.
        let n = conn.writable().len();
        conn.advance_write(n, 4_000);
        assert_eq!(
            conn.deadline(&c),
            (4_000 + c.idle_timeout_ms, TimeoutKind::Idle)
        );
    }

    #[test]
    fn read_timeout_answers_408_and_closes() {
        let mut conn = ConnState::new(0);
        conn.on_bytes(b"POST /v1/plan HTTP/1.1\r\nContent-Le", &cfg(), 0);
        conn.timeout_request();
        let text = String::from_utf8_lossy(conn.writable()).to_string();
        assert!(text.starts_with("HTTP/1.1 408 Request Timeout\r\n"));
        assert!(text.contains("Connection: close"));
        let n = conn.writable().len();
        conn.advance_write(n, 1);
        assert!(conn.should_close());
    }

    #[test]
    fn parse_fault_buffers_the_error_response_and_closes() {
        let mut conn = ConnState::new(0);
        let out = conn.on_bytes(b"\r\n", &cfg(), 0);
        assert!(out.fault.is_some());
        let text = String::from_utf8_lossy(conn.writable()).to_string();
        assert!(text.starts_with("HTTP/1.1 400 Bad Request\r\n"));
        let n = conn.writable().len();
        conn.advance_write(n, 1);
        assert!(conn.should_close());
    }

    #[test]
    fn keepalive_reuse_counts_second_request() {
        let mut conn = ConnState::new(0);
        let out = conn.on_bytes(&get("/a"), &cfg(), 0);
        assert_eq!(out.keepalive_reuse, 0);
        conn.complete(0, HttpResponse::text(200, "ok".into()));
        let n = conn.writable().len();
        conn.advance_write(n, 1);
        let out = conn.on_bytes(&get("/b"), &cfg(), 2);
        assert_eq!(out.keepalive_reuse, 1);
    }
}
