//! Connection timeouts without per-tick bookkeeping: a lazy deadline
//! heap.
//!
//! Every connection has exactly **one** effective deadline at a time —
//! write-stalled connections use the write timeout, mid-request
//! connections the read timeout (the slow-loris defence), idle
//! keep-alive connections the idle timeout. Deadlines move constantly
//! (every byte of progress pushes them out), so instead of removing and
//! re-inserting heap entries on every read, the wheel is **lazy**: an
//! entry is `(deadline, token, generation)` and firing is provisional.
//! When an entry pops, the reactor compares its generation against the
//! connection's current one — stale entries (the deadline moved since)
//! are dropped and the *current* deadline re-armed. Each connection
//! keeps at most one live generation, so the heap stays O(connections)
//! amortized.
//!
//! The wheel is clock-agnostic (callers pass `now_ms`), so the timeout
//! tests in `tests/serve_net.rs` drive it with a manual clock and zero
//! sleeps.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A provisional expiry out of [`TimerWheel::pop_due`]. The owner must
/// validate `generation` against the connection's current generation
/// before acting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expiry {
    /// The connection token the entry was armed for.
    pub token: usize,
    /// The arming generation; stale if the connection has re-armed since.
    pub generation: u64,
    /// The deadline that fired, ms.
    pub deadline_ms: u64,
}

/// The lazy deadline heap.
#[derive(Debug, Default)]
pub struct TimerWheel {
    // Min-heap on deadline: (Reverse(deadline), token, generation).
    heap: BinaryHeap<(Reverse<u64>, usize, u64)>,
}

impl TimerWheel {
    /// An empty wheel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms (or re-arms) a deadline for `token`. The caller bumps the
    /// connection's generation first; older entries for the same token
    /// become stale automatically.
    pub fn arm(&mut self, token: usize, generation: u64, deadline_ms: u64) {
        self.heap.push((Reverse(deadline_ms), token, generation));
    }

    /// When the next (possibly stale) entry fires, ms — the poll timeout
    /// bound. `None` when nothing is armed.
    pub fn next_deadline_ms(&self) -> Option<u64> {
        self.heap.peek().map(|&(Reverse(deadline), _, _)| deadline)
    }

    /// Pops every entry due at `now_ms`. Entries are *provisional*: the
    /// caller validates generations and re-arms moved deadlines.
    pub fn pop_due(&mut self, now_ms: u64) -> Vec<Expiry> {
        let mut due = Vec::new();
        while let Some(&(Reverse(deadline), token, generation)) = self.heap.peek() {
            if deadline > now_ms {
                break;
            }
            self.heap.pop();
            due.push(Expiry {
                token,
                generation,
                deadline_ms: deadline,
            });
        }
        due
    }

    /// Entries currently in the heap (stale ones included) — a test and
    /// debugging aid.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order() {
        let mut wheel = TimerWheel::new();
        wheel.arm(1, 0, 300);
        wheel.arm(2, 0, 100);
        wheel.arm(3, 0, 200);
        assert_eq!(wheel.next_deadline_ms(), Some(100));
        assert!(wheel.pop_due(99).is_empty());
        let due = wheel.pop_due(250);
        assert_eq!(
            due.iter().map(|e| e.token).collect::<Vec<_>>(),
            vec![2, 3],
            "only entries at or before now fire, earliest first"
        );
        assert_eq!(wheel.next_deadline_ms(), Some(300));
    }

    #[test]
    fn stale_generations_surface_for_the_caller_to_drop() {
        let mut wheel = TimerWheel::new();
        wheel.arm(7, 1, 100);
        // The connection made progress: deadline moved, generation bumped.
        wheel.arm(7, 2, 500);
        let due = wheel.pop_due(100);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].generation, 1, "the stale entry pops first");
        // Caller sees generation 1 != current 2 and ignores it; the live
        // entry is still armed.
        assert_eq!(wheel.next_deadline_ms(), Some(500));
    }
}
