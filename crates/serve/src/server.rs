//! The daemon: TCP accept loop, bounded admission queue, worker pool,
//! endpoint dispatch, and graceful shutdown.
//!
//! # Request flow
//!
//! ```text
//! connection thread            bounded queue            worker pool
//! ──────────────────           ─────────────            ───────────────
//! parse HTTP ── GET ──────────────────────────────────▶ answered inline
//!          └─── POST ─▶ admit ─▶ [Job, Job, ...] ─pop─▶ deadline check
//!                        │ full                            │ expired → 503
//!                        ▼                                 │ pressed → degraded chain
//!                       429                                ▼
//!                                                    PlanningEngine
//!                                                          │
//!                              ResponseSlot ◀── response ──┘
//! ```
//!
//! Admission control: the queue is **bounded** (`queue_capacity`) — a full
//! queue sheds load with `429` + `Retry-After` instead of letting latency
//! grow without bound. Each job carries its enqueue time; a worker that
//! pops an already-expired job answers `503` without searching, and a job
//! whose remaining budget is below `degrade_below_ms` is routed through
//! the **degraded** (greedy) chain rather than erroring — the
//! `FallbackChain` discipline applied to deadlines.
//!
//! The worker pool size resolves through the same
//! [`nshard_core::resolve_threads`] path as every other parallel
//! component, so `NSHARD_THREADS` is the single thread-count knob
//! (see [`nshard_core::pool::THREADS_ENV`]).
//!
//! Determinism: workers add no entropy — identical request bodies produce
//! byte-identical `200` responses at any concurrency, because the engine
//! is deterministic, plan ids are content-addressed, store adoption is
//! idempotent by id, and response bodies contain no timestamps.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use nshard_core::{resolve_threads, NeuroShardConfig};
use nshard_cost::CostModelBundle;
use nshard_online::IncrementalConfig;

use crate::api::{
    source_label, ErrorBody, HealthResponse, PlanRequest, PlanResponse, ReplanRequest,
    ReplanResponse,
};
use crate::clock::{Clock, WallClock};
use crate::engine::PlanningEngine;
use crate::http::{read_request, HttpParseError, HttpRequest, HttpResponse};
use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use crate::store::{PlanStore, StoreError};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// NeuroShard search knobs for the full chain.
    pub search: NeuroShardConfig,
    /// Warm-start knobs for `POST /v1/replan`.
    pub incremental: IncrementalConfig,
    /// Seed mixed into chain verifier seeds.
    pub seed: u64,
    /// Bounded admission-queue capacity; a full queue answers `429`.
    pub queue_capacity: usize,
    /// Worker threads draining the queue; `0` = auto via
    /// [`resolve_threads`] (the `NSHARD_THREADS` path).
    pub workers: usize,
    /// Deadline applied when a request does not carry one, ms.
    pub default_deadline_ms: u64,
    /// Remaining-budget threshold below which a request takes the
    /// degraded (greedy) chain instead of the full search, ms.
    pub degrade_below_ms: u64,
    /// Persist adopted plans under this directory; `None` = memory only.
    pub store_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            search: NeuroShardConfig::default(),
            incremental: IncrementalConfig::default(),
            seed: 0,
            queue_capacity: 64,
            workers: 0,
            default_deadline_ms: 30_000,
            degrade_below_ms: 250,
            store_dir: None,
        }
    }
}

impl ServeConfig {
    /// A fast configuration for tests and demos.
    pub fn smoke() -> Self {
        Self {
            search: NeuroShardConfig::smoke(),
            ..Self::default()
        }
    }
}

/// Which queued endpoint a job belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobKind {
    Plan,
    Replan,
}

impl JobKind {
    fn endpoint(self) -> &'static str {
        match self {
            JobKind::Plan => "plan",
            JobKind::Replan => "replan",
        }
    }
}

/// A queued planning request.
struct Job {
    kind: JobKind,
    body: Vec<u8>,
    enqueued_ms: u64,
    slot: Arc<ResponseSlot>,
}

/// Hand-off cell between a worker and the waiting connection thread.
pub struct ResponseSlot {
    cell: Mutex<Option<HttpResponse>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            cell: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn put(&self, response: HttpResponse) {
        let mut cell = self.cell.lock().expect("slot poisoned");
        *cell = Some(response);
        self.ready.notify_all();
    }

    /// Blocks until a worker fills the slot.
    pub fn wait(&self) -> HttpResponse {
        let mut cell = self.cell.lock().expect("slot poisoned");
        loop {
            if let Some(response) = cell.take() {
                return response;
            }
            cell = self.ready.wait(cell).expect("slot poisoned");
        }
    }
}

/// Why admission refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The bounded queue is full — shed load, retry later.
    QueueFull,
    /// The daemon is draining for shutdown.
    ShuttingDown,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded admission queue.
struct AdmissionQueue {
    state: Mutex<QueueState>,
    nonempty: Condvar,
    capacity: usize,
    depth: Arc<Gauge>,
}

impl AdmissionQueue {
    fn new(capacity: usize, depth: Arc<Gauge>) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity,
            depth,
        }
    }

    fn push(&self, job: Job) -> Result<(), Rejection> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(Rejection::ShuttingDown);
        }
        if state.jobs.len() >= self.capacity {
            return Err(Rejection::QueueFull);
        }
        state.jobs.push_back(job);
        self.depth.set(state.jobs.len() as u64);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once closed **and** drained, so
    /// shutdown still answers everything already admitted.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                self.depth.set(state.jobs.len() as u64);
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.nonempty.wait(state).expect("queue poisoned");
        }
    }

    /// Non-blocking pop (the synchronous test hook).
    fn try_pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue poisoned");
        let job = state.jobs.pop_front();
        self.depth.set(state.jobs.len() as u64);
        job
    }

    fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.nonempty.notify_all();
    }
}

/// Per-endpoint metric handles.
struct ServiceMetrics {
    registry: MetricsRegistry,
    queue_depth: Arc<Gauge>,
    search_latency: Arc<Histogram>,
    degraded: Arc<Counter>,
    fallbacks: Arc<Counter>,
    repairs: Arc<Counter>,
}

impl ServiceMetrics {
    fn new() -> Self {
        let registry = MetricsRegistry::new();
        let queue_depth = registry.gauge(
            "nshard_serve_queue_depth",
            "Planning jobs waiting in the admission queue",
        );
        let search_latency = registry.histogram(
            "nshard_serve_search_latency_ms",
            "Wall-clock latency of admitted planning jobs, ms",
        );
        let degraded = registry.counter(
            "nshard_serve_degraded_total",
            "Requests answered with a degraded (non-primary) plan",
        );
        let fallbacks = registry.counter(
            "nshard_serve_fallback_total",
            "Plans produced by a fallback stage or the size-balanced last resort",
        );
        let repairs = registry.counter(
            "nshard_serve_repair_total",
            "Plans that needed the repair engine",
        );
        Self {
            registry,
            queue_depth,
            search_latency,
            degraded,
            fallbacks,
            repairs,
        }
    }

    fn count_request(&self, endpoint: &str, code: u16) {
        self.registry
            .counter(
                &format!("nshard_serve_requests_total{{endpoint=\"{endpoint}\",code=\"{code}\"}}"),
                "Requests by endpoint and status code",
            )
            .inc();
    }

    fn count_rejection(&self, reason: &str) {
        self.registry
            .counter(
                &format!("nshard_serve_rejected_total{{reason=\"{reason}\"}}"),
                "Requests shed by admission control",
            )
            .inc();
    }
}

/// The daemon's service layer: everything minus the TCP accept loop, so
/// tests can drive it synchronously ([`Service::drain_one`]) with a
/// manual clock and zero sleeps.
pub struct Service {
    config: ServeConfig,
    engine: PlanningEngine,
    plans: PlanStore,
    clock: Arc<dyn Clock>,
    queue: AdmissionQueue,
    metrics: ServiceMetrics,
    workers: usize,
}

impl Service {
    /// Builds the service from a pre-trained bundle.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when `store_dir` exists but cannot be opened or
    /// holds an unloadable plan.
    pub fn new(bundle: CostModelBundle, config: ServeConfig) -> Result<Self, StoreError> {
        Self::with_clock(bundle, config, Arc::new(WallClock::new()))
    }

    /// Same, with an explicit clock (tests inject a
    /// [`crate::clock::ManualClock`]).
    ///
    /// # Errors
    ///
    /// [`StoreError`] as for [`Service::new`].
    pub fn with_clock(
        bundle: CostModelBundle,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, StoreError> {
        let plans = match &config.store_dir {
            Some(dir) => PlanStore::open(dir)?,
            None => PlanStore::in_memory(),
        };
        let engine = PlanningEngine::new(bundle, config.search, config.incremental, config.seed);
        let metrics = ServiceMetrics::new();
        let queue = AdmissionQueue::new(config.queue_capacity, Arc::clone(&metrics.queue_depth));
        let workers = resolve_threads(config.workers);
        Ok(Self {
            config,
            engine,
            plans,
            clock,
            queue,
            metrics,
            workers,
        })
    }

    /// The plan store (tests and the demo inspect it directly).
    pub fn plans(&self) -> &PlanStore {
        &self.plans
    }

    /// The resolved worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Answers a request end to end, blocking until a worker (or the
    /// caller's own [`Service::drain_one`]) produces the response.
    pub fn handle_blocking(&self, request: &HttpRequest) -> HttpResponse {
        match self.route(request) {
            Routed::Inline(response) => response,
            Routed::Queued(slot) => slot.wait(),
        }
    }

    /// Routes a request: GETs answered inline, planning POSTs admitted to
    /// the queue (the returned slot resolves when a worker finishes).
    pub fn route(&self, request: &HttpRequest) -> Routed {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/health") => Routed::Inline(self.health()),
            ("GET", "/metrics") => Routed::Inline(HttpResponse::text(200, self.render_metrics())),
            ("GET", path) if path.starts_with("/v1/plans/") => {
                Routed::Inline(self.get_plan(&path["/v1/plans/".len()..]))
            }
            ("POST", "/v1/plan") => self.admit(JobKind::Plan, request.body.clone()),
            ("POST", "/v1/replan") => self.admit(JobKind::Replan, request.body.clone()),
            ("POST", _) | ("GET", _) => {
                self.metrics.count_request("other", 404);
                Routed::Inline(error_response(
                    404,
                    "not_found",
                    format!("no route for {} {}", request.method, request.path),
                ))
            }
            (method, _) => {
                self.metrics.count_request("other", 405);
                Routed::Inline(error_response(
                    405,
                    "method_not_allowed",
                    format!("method {method} not supported"),
                ))
            }
        }
    }

    fn health(&self) -> HttpResponse {
        self.metrics.count_request("health", 200);
        let body = HealthResponse {
            status: "ok".into(),
            plans: self.plans.len() as u64,
            workers: self.workers as u64,
            queue_capacity: self.config.queue_capacity as u64,
        };
        HttpResponse::json(200, serde_json::to_string(&body).unwrap_or_default())
    }

    fn get_plan(&self, id: &str) -> HttpResponse {
        match self.plans.get(id) {
            Some(stored) => {
                self.metrics.count_request("plans_get", 200);
                HttpResponse::json(200, serde_json::to_string(&stored).unwrap_or_default())
            }
            None => {
                self.metrics.count_request("plans_get", 404);
                error_response(404, "not_found", format!("no stored plan with id {id}"))
            }
        }
    }

    /// Admits a planning job, or sheds it with `429`/`503`.
    fn admit(&self, kind: JobKind, body: Vec<u8>) -> Routed {
        let slot = ResponseSlot::new();
        let job = Job {
            kind,
            body,
            enqueued_ms: self.clock.now_ms(),
            slot: Arc::clone(&slot),
        };
        match self.queue.push(job) {
            Ok(()) => Routed::Queued(slot),
            Err(Rejection::QueueFull) => {
                self.metrics.count_rejection("queue_full");
                self.metrics.count_request(kind.endpoint(), 429);
                Routed::Inline(
                    error_response(
                        429,
                        "queue_full",
                        format!(
                            "admission queue at capacity ({}); retry later",
                            self.config.queue_capacity
                        ),
                    )
                    .with_retry_after(1),
                )
            }
            Err(Rejection::ShuttingDown) => {
                self.metrics.count_rejection("shutdown");
                self.metrics.count_request(kind.endpoint(), 503);
                Routed::Inline(
                    error_response(503, "shutting_down", "daemon is draining".to_string())
                        .with_retry_after(5),
                )
            }
        }
    }

    /// Worker body: blocks for the next job and processes it. Returns
    /// `false` once the queue is closed and drained.
    fn drain_blocking(&self) -> bool {
        match self.queue.pop() {
            Some(job) => {
                self.process(job);
                true
            }
            None => false,
        }
    }

    /// Synchronously processes one queued job if any — the no-sleep test
    /// hook. Returns `false` when the queue was empty.
    pub fn drain_one(&self) -> bool {
        match self.queue.try_pop() {
            Some(job) => {
                self.process(job);
                true
            }
            None => false,
        }
    }

    fn process(&self, job: Job) {
        let started_ms = self.clock.now_ms();
        let response = self.respond(&job, started_ms);
        self.metrics.search_latency.observe(
            (self.clock.now_ms() - started_ms) as f64 + (started_ms - job.enqueued_ms) as f64,
        );
        self.metrics
            .count_request(job.kind.endpoint(), response.status);
        job.slot.put(response);
    }

    /// Produces the response for one job: deadline check, degradation
    /// decision, parse, plan, adopt, serialize.
    fn respond(&self, job: &Job, now_ms: u64) -> HttpResponse {
        let parsed_deadline = match job.kind {
            JobKind::Plan => {
                serde_json::from_str::<PlanRequest>(&String::from_utf8_lossy(&job.body)).map(|r| {
                    let deadline = r.deadline_ms;
                    (Parsed::Plan(r), deadline)
                })
            }
            JobKind::Replan => serde_json::from_str::<ReplanRequest>(&String::from_utf8_lossy(
                &job.body,
            ))
            .map(|r| {
                let deadline = r.deadline_ms;
                (Parsed::Replan(r), deadline)
            }),
        };
        let (parsed, deadline_ms) = match parsed_deadline {
            Ok((parsed, deadline)) => (parsed, deadline.unwrap_or(self.config.default_deadline_ms)),
            Err(e) => {
                return error_response(400, "bad_request", format!("invalid request body: {e}"))
            }
        };

        let waited_ms = now_ms.saturating_sub(job.enqueued_ms);
        if waited_ms >= deadline_ms {
            self.metrics.count_rejection("deadline");
            return error_response(
                503,
                "deadline_expired",
                format!("request waited {waited_ms} ms against a {deadline_ms} ms deadline"),
            )
            .with_retry_after(1);
        }
        // Deadline-pressed: not enough budget left for a beam search, so
        // degrade to the greedy chain instead of erroring later.
        let degrade = deadline_ms - waited_ms < self.config.degrade_below_ms;

        match parsed {
            Parsed::Plan(request) => self.respond_plan(request, degrade),
            Parsed::Replan(request) => self.respond_replan(request, degrade),
        }
    }

    fn respond_plan(&self, request: PlanRequest, degrade: bool) -> HttpResponse {
        let output = match self.engine.plan(&request.task, degrade) {
            Ok(output) => output,
            Err(e) => return error_response(422, "infeasible", e.to_string()),
        };
        self.observe_outcome(&output.provenance, output.degraded);
        let version = if request.adopt {
            match self.plans.adopt(
                &output.id,
                request.task,
                output.plan.clone(),
                output.provenance.clone(),
                output.predicted_ms,
                output.degraded,
            ) {
                Ok(stored) => stored.version,
                Err(e) => return error_response(500, "store_failed", e.to_string()),
            }
        } else {
            0
        };
        let body = PlanResponse {
            id: output.id,
            version,
            degraded: output.degraded,
            source: source_label(&output.provenance.source),
            predicted_ms: output.predicted_ms,
            plan: output.plan,
            provenance: output.provenance,
        };
        HttpResponse::json(200, serde_json::to_string(&body).unwrap_or_default())
    }

    fn respond_replan(&self, request: ReplanRequest, degrade: bool) -> HttpResponse {
        let incumbent = match &request.incumbent_id {
            Some(id) => self.plans.get(id),
            None => self.plans.latest(),
        };
        let Some(incumbent) = incumbent else {
            return error_response(
                404,
                "no_incumbent",
                match &request.incumbent_id {
                    Some(id) => format!("no stored plan with id {id}"),
                    None => "the store holds no plan to warm-start from".to_string(),
                },
            );
        };
        let re = match self.engine.replan(&request.task, &incumbent.plan, degrade) {
            Ok(re) => re,
            Err(e) => return error_response(422, "infeasible", e.to_string()),
        };
        self.observe_outcome(&re.output.provenance, re.output.degraded);
        let version = if request.adopt {
            match self.plans.adopt(
                &re.output.id,
                request.task,
                re.output.plan.clone(),
                re.output.provenance.clone(),
                re.output.predicted_ms,
                re.output.degraded,
            ) {
                Ok(stored) => stored.version,
                Err(e) => return error_response(500, "store_failed", e.to_string()),
            }
        } else {
            0
        };
        let body = ReplanResponse {
            id: re.output.id,
            version,
            degraded: re.output.degraded,
            source: source_label(&re.output.provenance.source),
            predicted_ms: re.output.predicted_ms,
            migration_bytes: re.migration_bytes,
            incremental: re.incremental,
            evaluated_plans: re.evaluated_plans as u64,
            plan: re.output.plan,
            provenance: re.output.provenance,
        };
        HttpResponse::json(200, serde_json::to_string(&body).unwrap_or_default())
    }

    fn observe_outcome(&self, provenance: &nshard_core::PlanProvenance, degraded: bool) {
        if degraded {
            self.metrics.degraded.inc();
        }
        match &provenance.source {
            nshard_core::PlanSource::Repaired { .. } => self.metrics.repairs.inc(),
            nshard_core::PlanSource::Fallback { .. } | nshard_core::PlanSource::SizeBalanced => {
                self.metrics.fallbacks.inc()
            }
            nshard_core::PlanSource::Primary { .. } => {}
        }
    }

    /// Prometheus exposition: the registry plus prediction-cache gauges
    /// scraped live from the engine.
    pub fn render_metrics(&self) -> String {
        let mut out = self.metrics.registry.render();
        let stats = self.engine.cache_stats();
        out.push_str(
            "# HELP nshard_serve_cache_hits_total Prediction-cache hits across all searches\n\
             # TYPE nshard_serve_cache_hits_total counter\n",
        );
        out.push_str(&format!("nshard_serve_cache_hits_total {}\n", stats.hits));
        out.push_str(
            "# HELP nshard_serve_cache_misses_total Prediction-cache misses across all searches\n\
             # TYPE nshard_serve_cache_misses_total counter\n",
        );
        out.push_str(&format!(
            "nshard_serve_cache_misses_total {}\n",
            stats.misses
        ));
        out
    }

    /// Stops admission and lets workers drain what was already accepted.
    pub fn close(&self) {
        self.queue.close();
    }
}

/// Result of routing one request.
pub enum Routed {
    /// Answered without queueing.
    Inline(HttpResponse),
    /// Admitted; the slot resolves when a worker finishes the job.
    Queued(Arc<ResponseSlot>),
}

fn error_response(status: u16, kind: &str, detail: String) -> HttpResponse {
    HttpResponse::json(status, ErrorBody::new(kind, detail).to_json())
}

/// A running daemon: accept loop plus worker pool around a [`Service`].
pub struct Server {
    service: Arc<Service>,
    addr: std::net::SocketAddr,
    running: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener.
    pub fn start(service: Arc<Service>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));

        let worker_threads: Vec<JoinHandle<()>> = (0..service.workers())
            .map(|i| {
                let service = Arc::clone(&service);
                std::thread::Builder::new()
                    .name(format!("nshard-serve-worker-{i}"))
                    .spawn(move || while service.drain_blocking() {})
                    .expect("spawn worker")
            })
            .collect();

        let accept_thread = {
            let service = Arc::clone(&service);
            let running = Arc::clone(&running);
            std::thread::Builder::new()
                .name("nshard-serve-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if !running.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let service = Arc::clone(&service);
                        // One thread per connection: connections are
                        // short-lived (Connection: close) and the real
                        // concurrency limit is the bounded queue behind.
                        std::thread::spawn(move || handle_connection(&service, stream));
                    }
                })
                .expect("spawn accept loop")
        };

        Ok(Self {
            service,
            addr: local,
            running,
            accept_thread: Some(accept_thread),
            worker_threads,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared service.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Graceful shutdown: stop accepting, drain the queue, join all
    /// threads. Everything already admitted still gets its response.
    pub fn shutdown(mut self) {
        self.running.store(false, Ordering::SeqCst);
        self.service.close();
        // Self-connect to wake the blocking accept call.
        let _ = TcpStream::connect(self.addr).map(|mut s| s.write_all(b""));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Parsed request body, by endpoint.
enum Parsed {
    Plan(PlanRequest),
    Replan(ReplanRequest),
}

fn handle_connection(service: &Service, mut stream: TcpStream) {
    let response = match read_request(&mut stream) {
        Ok(request) => service.handle_blocking(&request),
        Err(HttpParseError::BodyTooLarge { declared }) => error_response(
            413,
            "body_too_large",
            format!("declared body of {declared} bytes exceeds the limit"),
        ),
        // Includes the zero-byte wake-up connection from shutdown.
        Err(_) => return,
    };
    let _ = response.write_to(&mut stream);
}
