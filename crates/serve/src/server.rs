//! The daemon: TCP accept loop, bounded admission queue, worker pool,
//! endpoint dispatch, and graceful shutdown.
//!
//! # Request flow
//!
//! ```text
//! connection thread            bounded queue            worker pool
//! ──────────────────           ─────────────            ───────────────
//! parse HTTP ── GET ──────────────────────────────────▶ answered inline
//!          └─── POST ─▶ admit ─▶ [Job, Job, ...] ─pop─▶ deadline check
//!                        │ full                            │ expired → 503
//!                        ▼                                 │ pressed → degraded chain
//!                       429                                ▼
//!                                                    PlanningEngine
//!                                                          │
//!                              ResponseSlot ◀── response ──┘
//! ```
//!
//! Admission control: the queue is **bounded** (`queue_capacity`) — a full
//! queue sheds load with `429` + `Retry-After` instead of letting latency
//! grow without bound. Each job carries its enqueue time; a worker that
//! pops an already-expired job answers `503` without searching, and a job
//! whose remaining budget is below `degrade_below_ms` is routed through
//! the **degraded** (greedy) chain rather than erroring — the
//! `FallbackChain` discipline applied to deadlines.
//!
//! The worker pool size resolves through the same
//! [`nshard_core::resolve_threads`] path as every other parallel
//! component, so `NSHARD_THREADS` is the single thread-count knob
//! (see [`nshard_core::pool::THREADS_ENV`]).
//!
//! Determinism: workers add no entropy — identical request bodies produce
//! byte-identical `200` responses at any concurrency, because the engine
//! is deterministic, plan ids are content-addressed, store adoption is
//! idempotent by id, and response bodies contain no timestamps.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use nshard_core::{resolve_threads, NeuroShardConfig};
use nshard_cost::CostModelBundle;
use nshard_data::ShardingTask;
use nshard_online::IncrementalConfig;

use crate::api::{
    source_label, ErrorBody, HealthResponse, ObservationWire, ObservationsAck, ObservationsRequest,
    PlanRequest, PlanResponse, ReplStatus, ReplanRequest, ReplanResponse,
};
use crate::clock::{Clock, WallClock};
use crate::engine::PlanningEngine;
use crate::http::{read_request, HttpParseError, HttpRequest, HttpResponse};
use crate::kv::{KvSnapshot, LogOp, MatchSeq, PlanKv};
use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use crate::net::{ConnConfig, IoMode, Reactor};
use crate::repl::{Role, RoleCell};
use crate::store::{PlanStore, StoreError, StoredPlan};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// NeuroShard search knobs for the full chain.
    pub search: NeuroShardConfig,
    /// Warm-start knobs for `POST /v1/replan`.
    pub incremental: IncrementalConfig,
    /// Seed mixed into chain verifier seeds.
    pub seed: u64,
    /// Bounded admission-queue capacity; a full queue answers `429`.
    pub queue_capacity: usize,
    /// Worker threads draining the queue; `0` = auto via
    /// [`resolve_threads`] (the `NSHARD_THREADS` path).
    pub workers: usize,
    /// Deadline applied when a request does not carry one, ms.
    pub default_deadline_ms: u64,
    /// Remaining-budget threshold below which a request takes the
    /// degraded (greedy) chain instead of the full search, ms.
    pub degrade_below_ms: u64,
    /// Persist adopted plans under this directory; `None` = memory only.
    pub store_dir: Option<PathBuf>,
    /// Replication role and tier knobs; defaults to a standalone leader,
    /// so single-node deployments need no extra configuration.
    pub replica: ReplicaConfig,
    /// Which accept path serves connections: the event-driven reactor
    /// (default) or the blocking thread-per-connection reference.
    pub io_mode: IoMode,
    /// Event-loop connection knobs (timeouts, pipeline depth, write
    /// buffering); ignored in [`IoMode::Blocking`].
    pub net: ConnConfig,
    /// Identical-request response cache entries; `0` (default) disables
    /// it. Safe because identical bodies already produce byte-identical
    /// responses (the documented determinism contract) and every entry
    /// keys on the serving model version (replans additionally on the
    /// store generation), so a model promotion or plan adoption
    /// invalidates it. Hits are answered inline at admission without
    /// consuming queue capacity. `bench_replay` turns this on to push
    /// request volume into HTTP-path territory instead of re-running
    /// identical searches.
    pub response_cache_entries: usize,
}

/// Replication knobs of one node in a serve tier.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// This node's name, used in failover attribution.
    pub node: String,
    /// Start as a follower (tail a leader's log) instead of as the
    /// leader.
    pub follower: bool,
    /// Consecutive transport failures after which a follower promotes
    /// itself to leader.
    pub failure_threshold: u32,
    /// Base reconnect backoff, ms (seeded decorrelated jitter on top).
    pub backoff_base_ms: u64,
    /// Reconnect backoff cap, ms.
    pub backoff_cap_ms: u64,
    /// Ops retained in the replication log before compaction; lagging
    /// followers beyond the window catch up by snapshot.
    pub log_keep: usize,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            node: "node-0".to_string(),
            follower: false,
            failure_threshold: 3,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            log_keep: 1_024,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            search: NeuroShardConfig::default(),
            incremental: IncrementalConfig::default(),
            seed: 0,
            queue_capacity: 64,
            workers: 0,
            default_deadline_ms: 30_000,
            degrade_below_ms: 250,
            store_dir: None,
            replica: ReplicaConfig::default(),
            io_mode: IoMode::Event,
            net: ConnConfig::default(),
            response_cache_entries: 0,
        }
    }
}

impl ServeConfig {
    /// A fast configuration for tests and demos.
    pub fn smoke() -> Self {
        Self {
            search: NeuroShardConfig::smoke(),
            ..Self::default()
        }
    }
}

/// Which queued endpoint a job belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobKind {
    Plan,
    Replan,
}

impl JobKind {
    fn endpoint(self) -> &'static str {
        match self {
            JobKind::Plan => "plan",
            JobKind::Replan => "replan",
        }
    }
}

/// A queued planning request.
struct Job {
    kind: JobKind,
    body: Vec<u8>,
    enqueued_ms: u64,
    sink: ResponseSink,
}

/// Where a worker delivers a finished response: a blocking slot (the
/// thread-per-connection path parks on it) or a callback (the event
/// loop's completion queue — the reactor thread never blocks).
enum ResponseSink {
    Slot(Arc<ResponseSlot>),
    Callback(Box<dyn FnOnce(HttpResponse) + Send>),
}

impl ResponseSink {
    fn deliver(self, response: HttpResponse) {
        match self {
            ResponseSink::Slot(slot) => slot.put(response),
            ResponseSink::Callback(callback) => callback(response),
        }
    }
}

/// Hand-off cell between a worker and the waiting connection thread.
pub struct ResponseSlot {
    cell: Mutex<Option<HttpResponse>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            cell: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn put(&self, response: HttpResponse) {
        let mut cell = self.cell.lock().expect("slot poisoned");
        *cell = Some(response);
        self.ready.notify_all();
    }

    /// Blocks until a worker fills the slot.
    pub fn wait(&self) -> HttpResponse {
        let mut cell = self.cell.lock().expect("slot poisoned");
        loop {
            if let Some(response) = cell.take() {
                return response;
            }
            cell = self.ready.wait(cell).expect("slot poisoned");
        }
    }
}

/// Why admission refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The bounded queue is full — shed load, retry later.
    QueueFull,
    /// The daemon is draining for shutdown.
    ShuttingDown,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded admission queue.
struct AdmissionQueue {
    state: Mutex<QueueState>,
    nonempty: Condvar,
    capacity: usize,
    depth: Arc<Gauge>,
}

impl AdmissionQueue {
    fn new(capacity: usize, depth: Arc<Gauge>) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity,
            depth,
        }
    }

    fn push(&self, job: Job) -> Result<(), Rejection> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(Rejection::ShuttingDown);
        }
        if state.jobs.len() >= self.capacity {
            return Err(Rejection::QueueFull);
        }
        state.jobs.push_back(job);
        self.depth.set(state.jobs.len() as u64);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once closed **and** drained, so
    /// shutdown still answers everything already admitted.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                self.depth.set(state.jobs.len() as u64);
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.nonempty.wait(state).expect("queue poisoned");
        }
    }

    /// Non-blocking pop (the synchronous test hook).
    fn try_pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue poisoned");
        let job = state.jobs.pop_front();
        self.depth.set(state.jobs.len() as u64);
        job
    }

    fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.nonempty.notify_all();
    }
}

/// A bounded FIFO cache of `200` responses for byte-identical request
/// bodies. Correctness rests on the daemon's determinism contract —
/// identical bodies already yield byte-identical responses (plan ids are
/// content-addressed, adoption is idempotent) — so a hit only skips
/// redundant search work, never changes an answer. Every entry folds the
/// serving model version into the key (replan entries also the store
/// generation), so a model promotion or plan adoption invalidates it —
/// a response priced by a retired model is never replayed.
struct ResponseCache {
    capacity: usize,
    map: std::collections::HashMap<u64, HttpResponse>,
    order: VecDeque<u64>,
}

impl ResponseCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: std::collections::HashMap::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
        }
    }

    fn get(&self, key: u64) -> Option<HttpResponse> {
        self.map.get(&key).cloned()
    }

    fn put(&mut self, key: u64, response: HttpResponse) {
        if self.map.contains_key(&key) {
            return;
        }
        if self.order.len() >= self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.map.remove(&evicted);
            }
        }
        self.order.push_back(key);
        self.map.insert(key, response);
    }
}

/// FNV-1a over the facts that determine a cached response.
fn response_cache_key(kind: JobKind, degrade: bool, generation: u64, body: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(match kind {
        JobKind::Plan => 1,
        JobKind::Replan => 2,
    });
    mix(u8::from(degrade));
    for byte in generation.to_le_bytes() {
        mix(byte);
    }
    for &byte in body {
        mix(byte);
    }
    hash
}

/// Per-endpoint metric handles.
struct ServiceMetrics {
    registry: MetricsRegistry,
    queue_depth: Arc<Gauge>,
    search_latency: Arc<Histogram>,
    degraded: Arc<Counter>,
    fallbacks: Arc<Counter>,
    repairs: Arc<Counter>,
    replica_role: Arc<Gauge>,
    replication_lag: Arc<Gauge>,
    snapshot_catchup: Arc<Counter>,
    seq_conflicts: Arc<Counter>,
    response_cache_hits: Arc<Counter>,
    response_cache_misses: Arc<Counter>,
    observations: Arc<Counter>,
    model_promotions: Arc<Counter>,
    model_rollbacks: Arc<Counter>,
    model_version: Arc<Gauge>,
}

impl ServiceMetrics {
    fn new() -> Self {
        let registry = MetricsRegistry::new();
        let queue_depth = registry.gauge(
            "nshard_serve_queue_depth",
            "Planning jobs waiting in the admission queue",
        );
        let search_latency = registry.histogram(
            "nshard_serve_search_latency_ms",
            "Wall-clock latency of admitted planning jobs, ms",
        );
        let degraded = registry.counter(
            "nshard_serve_degraded_total",
            "Requests answered with a degraded (non-primary) plan",
        );
        let fallbacks = registry.counter(
            "nshard_serve_fallback_total",
            "Plans produced by a fallback stage or the size-balanced last resort",
        );
        let repairs = registry.counter(
            "nshard_serve_repair_total",
            "Plans that needed the repair engine",
        );
        let replica_role = registry.gauge(
            "nshard_serve_replica_role",
            "This node's replication role: 0 follower, 1 candidate, 2 leader",
        );
        let replication_lag = registry.gauge(
            "nshard_serve_replication_lag",
            "Sequence delta between the last observed leader op and this replica",
        );
        let snapshot_catchup = registry.counter(
            "nshard_serve_snapshot_catchup_total",
            "Times this replica caught up by full snapshot instead of log tailing",
        );
        let seq_conflicts = registry.counter(
            "nshard_serve_seq_conflict_total",
            "Conditional KV upserts refused by their MatchSeq condition",
        );
        let response_cache_hits = registry.counter(
            "nshard_serve_response_cache_hits_total",
            "Planning jobs answered from the identical-request response cache",
        );
        let response_cache_misses = registry.counter(
            "nshard_serve_response_cache_misses_total",
            "Planning jobs that missed the response cache (cache enabled only)",
        );
        let observations = registry.counter(
            "nshard_serve_observations_total",
            "Ground-truth cost observations accepted via POST /v1/observations",
        );
        let model_promotions = registry.counter(
            "nshard_serve_model_promotions_total",
            "Fine-tuned cost-model bundles promoted into the serving engine",
        );
        let model_rollbacks = registry.counter(
            "nshard_serve_model_rollbacks_total",
            "Candidate cost-model bundles rejected by shadow evaluation (incumbent kept)",
        );
        let model_version = registry.gauge(
            "nshard_serve_model_version",
            "Version of the cost-model bundle currently serving predictions",
        );
        Self {
            registry,
            queue_depth,
            search_latency,
            degraded,
            fallbacks,
            repairs,
            replica_role,
            replication_lag,
            snapshot_catchup,
            seq_conflicts,
            response_cache_hits,
            response_cache_misses,
            observations,
            model_promotions,
            model_rollbacks,
            model_version,
        }
    }

    fn count_request(&self, endpoint: &str, code: u16) {
        self.registry
            .counter(
                &format!("nshard_serve_requests_total{{endpoint=\"{endpoint}\",code=\"{code}\"}}"),
                "Requests by endpoint and status code",
            )
            .inc();
    }

    fn count_rejection(&self, reason: &str) {
        self.registry
            .counter(
                &format!("nshard_serve_rejected_total{{reason=\"{reason}\"}}"),
                "Requests shed by admission control",
            )
            .inc();
    }
}

/// The daemon's service layer: everything minus the TCP accept loop, so
/// tests can drive it synchronously ([`Service::drain_one`]) with a
/// manual clock and zero sleeps.
pub struct Service {
    config: ServeConfig,
    engine: PlanningEngine,
    plans: PlanStore,
    kv: PlanKv,
    role: RoleCell,
    clock: Arc<dyn Clock>,
    queue: AdmissionQueue,
    metrics: ServiceMetrics,
    workers: usize,
    response_cache: Option<Mutex<ResponseCache>>,
    observations: Mutex<VecDeque<ObservationWire>>,
}

/// Most ground-truth observations the daemon buffers before evicting the
/// oldest — bounds memory under a reporting storm. The continual-learning
/// loop ([`Service::take_observations`]) owns prioritized sampling; the
/// daemon keeps only a bounded FIFO staging area.
const OBSERVATION_BUFFER_CAP: usize = 65_536;

impl Service {
    /// Builds the service from a pre-trained bundle.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when `store_dir` exists but cannot be opened or
    /// holds an unloadable plan.
    pub fn new(bundle: CostModelBundle, config: ServeConfig) -> Result<Self, StoreError> {
        Self::with_clock(bundle, config, Arc::new(WallClock::new()))
    }

    /// Same, with an explicit clock (tests inject a
    /// [`crate::clock::ManualClock`]).
    ///
    /// # Errors
    ///
    /// [`StoreError`] as for [`Service::new`].
    pub fn with_clock(
        bundle: CostModelBundle,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, StoreError> {
        // Reject dead configurations before they can panic deep inside
        // the engine: the typed [`nshard_core::ConfigError`] surfaces the
        // same way store corruption does — at construction, not at the
        // first request.
        config
            .search
            .validate()
            .map_err(StoreError::InvalidConfig)?;
        let plans = match &config.store_dir {
            Some(dir) => PlanStore::open(dir)?,
            None => PlanStore::in_memory(),
        };
        let engine = PlanningEngine::new(bundle, config.search, config.incremental, config.seed);
        let metrics = ServiceMetrics::new();
        metrics.model_version.set(engine.model_version());
        let queue = AdmissionQueue::new(config.queue_capacity, Arc::clone(&metrics.queue_depth));
        let workers = resolve_threads(config.workers);
        let role = RoleCell::new(if config.replica.follower {
            Role::Follower
        } else {
            Role::Leader
        });
        metrics.replica_role.set(role.role().gauge_value());
        let kv = PlanKv::new(config.replica.log_keep);
        // Replay warm-restarted plans into the KV in adoption order, so a
        // restarted leader immediately serves its log to followers.
        if !config.replica.follower {
            for id in plans.ids() {
                if let Some(record) = plans.get(&id) {
                    let value = serde_json::to_string(&record).unwrap_or_default();
                    let _ = kv.upsert(&plan_key(&id), value, MatchSeq::Any);
                }
            }
        }
        let response_cache = (config.response_cache_entries > 0)
            .then(|| Mutex::new(ResponseCache::new(config.response_cache_entries)));
        Ok(Self {
            config,
            engine,
            plans,
            kv,
            role,
            clock,
            queue,
            metrics,
            workers,
            response_cache,
            observations: Mutex::new(VecDeque::new()),
        })
    }

    /// The plan store (tests and the demo inspect it directly).
    pub fn plans(&self) -> &PlanStore {
        &self.plans
    }

    /// The sequenced KV behind replication.
    pub fn kv(&self) -> &PlanKv {
        &self.kv
    }

    /// This node's replication role cell.
    pub fn role(&self) -> &RoleCell {
        &self.role
    }

    /// The daemon configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The resolved worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Answers a request end to end, blocking until a worker (or the
    /// caller's own [`Service::drain_one`]) produces the response.
    pub fn handle_blocking(&self, request: &HttpRequest) -> HttpResponse {
        match self.route(request) {
            Routed::Inline(response) => response,
            Routed::Queued(slot) => slot.wait(),
        }
    }

    /// Routes a request: GETs answered inline, planning POSTs admitted to
    /// the queue (the returned slot resolves when a worker finishes).
    pub fn route(&self, request: &HttpRequest) -> Routed {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/health") => Routed::Inline(self.health()),
            ("GET", "/metrics") => Routed::Inline(HttpResponse::text(200, self.render_metrics())),
            ("GET", path) if path.starts_with("/v1/plans/") => {
                Routed::Inline(self.get_plan(&path["/v1/plans/".len()..]))
            }
            ("GET", "/v1/repl/status") => Routed::Inline(self.repl_status()),
            ("GET", "/v1/repl/snapshot") => Routed::Inline(self.repl_snapshot()),
            ("GET", path) if path.starts_with("/v1/repl/log/") => {
                Routed::Inline(self.repl_log(&path["/v1/repl/log/".len()..]))
            }
            ("POST", "/v1/plan") => self.admit(JobKind::Plan, request.body.clone()),
            ("POST", "/v1/replan") => self.admit(JobKind::Replan, request.body.clone()),
            ("POST", "/v1/observations") => Routed::Inline(self.ingest_observations(&request.body)),
            ("POST", _) | ("GET", _) => {
                self.metrics.count_request("other", 404);
                Routed::Inline(error_response(
                    404,
                    "not_found",
                    format!("no route for {} {}", request.method, request.path),
                ))
            }
            (method, _) => {
                self.metrics.count_request("other", 405);
                Routed::Inline(error_response(
                    405,
                    "method_not_allowed",
                    format!("method {method} not supported"),
                ))
            }
        }
    }

    fn health(&self) -> HttpResponse {
        self.metrics.count_request("health", 200);
        let body = HealthResponse {
            status: "ok".into(),
            plans: self.plans.len() as u64,
            workers: self.workers as u64,
            queue_capacity: self.config.queue_capacity as u64,
            role: self.role.role().label().to_string(),
            model_version: self.engine.model_version(),
        };
        HttpResponse::json(200, serde_json::to_string(&body).unwrap_or_default())
    }

    /// `POST /v1/observations`: buffers ground-truth cost observations
    /// for the continual-learning loop. Answered inline — ingest is a
    /// bounded buffer push, not a search — so observation storms cannot
    /// starve planning jobs of queue capacity.
    fn ingest_observations(&self, body: &[u8]) -> HttpResponse {
        let request =
            match serde_json::from_str::<ObservationsRequest>(&String::from_utf8_lossy(body)) {
                Ok(request) => request,
                Err(e) => {
                    self.metrics.count_request("observations", 400);
                    return error_response(
                        400,
                        "bad_request",
                        format!("invalid observations body: {e}"),
                    );
                }
            };
        let accepted = request.observations.len() as u64;
        let buffered = {
            let mut buffer = self.observations.lock().expect("observations poisoned");
            buffer.extend(request.observations);
            while buffer.len() > OBSERVATION_BUFFER_CAP {
                buffer.pop_front();
            }
            buffer.len() as u64
        };
        self.metrics.observations.add(accepted);
        self.metrics.count_request("observations", 200);
        let ack = ObservationsAck {
            accepted,
            buffered,
            model_version: self.engine.model_version(),
        };
        HttpResponse::json(200, serde_json::to_string(&ack).unwrap_or_default())
    }

    /// Drains every buffered ground-truth observation — the
    /// continual-learning loop's pull path.
    pub fn take_observations(&self) -> Vec<ObservationWire> {
        self.observations
            .lock()
            .expect("observations poisoned")
            .drain(..)
            .collect()
    }

    /// Observations currently staged for the learning loop.
    pub fn observations_buffered(&self) -> usize {
        self.observations
            .lock()
            .expect("observations poisoned")
            .len()
    }

    /// The model version currently serving predictions.
    pub fn model_version(&self) -> u64 {
        self.engine.model_version()
    }

    /// Response-cache generation for `kind`: every cached response was
    /// priced by a specific model version (a promotion must invalidate
    /// it), and replans additionally depend on the plan-store generation
    /// (an adoption changes the incumbent a replan warm-starts from).
    fn cache_generation(&self, kind: JobKind) -> u64 {
        let version = self.engine.model_version() << 32;
        match kind {
            JobKind::Plan => version,
            JobKind::Replan => version | (self.plans.len() as u64 & 0xffff_ffff),
        }
    }

    /// Atomically promotes a fine-tuned cost-model bundle into the
    /// serving engine: the engine core (sharder, chains, incremental
    /// planner, prediction/encoding caches) is rebuilt and swapped under
    /// one write lock, and a leader replicates the bundle to followers
    /// under the `models/active` KV key. Returns the new model version.
    pub fn promote_model(&self, bundle: &CostModelBundle) -> u64 {
        let version = self.engine.swap_bundle(bundle.clone());
        self.metrics.model_promotions.inc();
        self.metrics.model_version.set(version);
        if self.role.is_leader() {
            let value = nshard_nn::serialize::envelope_to_json("cost-bundle", "nshard", bundle);
            let _ = self.kv.upsert(MODEL_KEY, value, MatchSeq::Any);
        }
        version
    }

    /// Records a shadow-evaluation rejection (the incumbent stays) in
    /// `/metrics` — the lifecycle calls this so rollbacks are observable.
    pub fn note_model_rollback(&self) {
        self.metrics.model_rollbacks.inc();
    }

    fn get_plan(&self, id: &str) -> HttpResponse {
        match self.plans.get(id) {
            Some(stored) => {
                self.metrics.count_request("plans_get", 200);
                let response =
                    HttpResponse::json(200, serde_json::to_string(&stored).unwrap_or_default());
                self.mark_stale(response)
            }
            None => {
                self.metrics.count_request("plans_get", 404);
                error_response(404, "not_found", format!("no stored plan with id {id}"))
            }
        }
    }

    /// Flags degraded-mode (stale) reads after a promotion that is known
    /// to be behind the dead leader.
    fn mark_stale(&self, response: HttpResponse) -> HttpResponse {
        if self.role.stale() {
            response.with_header("X-Nshard-Stale", "true")
        } else {
            response
        }
    }

    fn repl_status(&self) -> HttpResponse {
        self.metrics.count_request("repl_status", 200);
        let (log_earliest, log_len) = self.kv.log_window();
        let body = ReplStatus {
            node: self.config.replica.node.clone(),
            role: self.role.role().label().to_string(),
            applied_seq: self.kv.applied_seq(),
            stale: self.role.stale(),
            log_earliest,
            log_len: log_len as u64,
            plans: self.plans.len() as u64,
        };
        HttpResponse::json(200, serde_json::to_string(&body).unwrap_or_default())
    }

    fn repl_snapshot(&self) -> HttpResponse {
        self.metrics.count_request("repl_snapshot", 200);
        let snapshot = self.kv.snapshot();
        HttpResponse::json(200, serde_json::to_string(&snapshot).unwrap_or_default())
    }

    fn repl_log(&self, from: &str) -> HttpResponse {
        let Ok(from_seq) = from.parse::<u64>() else {
            self.metrics.count_request("repl_log", 400);
            return error_response(
                400,
                "bad_request",
                format!("log position {from:?} is not a sequence number"),
            );
        };
        self.metrics.count_request("repl_log", 200);
        let fetch = self.kv.log_since(from_seq);
        HttpResponse::json(200, serde_json::to_string(&fetch).unwrap_or_default())
    }

    /// Routes a request for the event loop: inline answers return
    /// `Some(response)` immediately; planning POSTs are admitted with
    /// `on_response` as the delivery callback and return `None` (the
    /// callback fires from a worker thread when the job completes).
    /// Admission rejections (429/503) and response-cache hits come back
    /// inline, so the callback fires **only** for admitted jobs.
    pub fn route_async(
        &self,
        request: &HttpRequest,
        on_response: Box<dyn FnOnce(HttpResponse) + Send>,
    ) -> Option<HttpResponse> {
        let kind = match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/v1/plan") => JobKind::Plan,
            ("POST", "/v1/replan") => JobKind::Replan,
            _ => {
                return match self.route(request) {
                    Routed::Inline(response) => Some(response),
                    Routed::Queued(_) => unreachable!("only planning POSTs queue"),
                }
            }
        };
        self.admit_with(
            kind,
            request.body.clone(),
            ResponseSink::Callback(on_response),
        )
        .err()
    }

    /// Admits a planning job with a blocking slot, or sheds it inline.
    fn admit(&self, kind: JobKind, body: Vec<u8>) -> Routed {
        let slot = ResponseSlot::new();
        match self.admit_with(kind, body, ResponseSink::Slot(Arc::clone(&slot))) {
            Ok(()) => Routed::Queued(slot),
            Err(rejection) => Routed::Inline(rejection),
        }
    }

    /// Admits a planning job, or returns an inline response: a shed
    /// (`429`/`503`) or an admission-time response-cache hit (`200`).
    fn admit_with(
        &self,
        kind: JobKind,
        body: Vec<u8>,
        sink: ResponseSink,
    ) -> Result<(), HttpResponse> {
        if !self.role.is_leader() {
            self.metrics.count_rejection("not_leader");
            self.metrics.count_request(kind.endpoint(), 503);
            return Err(error_response(
                503,
                "not_leader",
                format!(
                    "node {} is a {}; planning writes go to the leader",
                    self.config.replica.node,
                    self.role.role().label()
                ),
            )
            .with_retry_after(1));
        }
        // Admission-time cache fast path: a hit is answered inline
        // without consuming queue capacity — equivalent to a worker
        // picking the job up instantly. The lookup keys `degrade =
        // false` (the zero-wait decision); identical bodies carry
        // identical deadlines, so a body whose deadline forces
        // degradation (or instant expiry) can never have an entry under
        // this key and falls through to the worker path, which computes
        // the full deadline/degrade semantics. Both I/O modes share
        // this path, so cross-mode conformance is untouched.
        if let Some(cache) = &self.response_cache {
            let key = response_cache_key(kind, false, self.cache_generation(kind), &body);
            if let Some(hit) = cache.lock().expect("cache poisoned").get(key) {
                self.metrics.response_cache_hits.inc();
                self.metrics.count_request(kind.endpoint(), hit.status);
                return Err(hit);
            }
        }
        let job = Job {
            kind,
            body,
            enqueued_ms: self.clock.now_ms(),
            sink,
        };
        match self.queue.push(job) {
            Ok(()) => Ok(()),
            Err(Rejection::QueueFull) => {
                self.metrics.count_rejection("queue_full");
                self.metrics.count_request(kind.endpoint(), 429);
                Err(error_response(
                    429,
                    "queue_full",
                    format!(
                        "admission queue at capacity ({}); retry later",
                        self.config.queue_capacity
                    ),
                )
                .with_retry_after(1))
            }
            Err(Rejection::ShuttingDown) => {
                self.metrics.count_rejection("shutdown");
                self.metrics.count_request(kind.endpoint(), 503);
                Err(
                    error_response(503, "shutting_down", "daemon is draining".to_string())
                        .with_retry_after(5),
                )
            }
        }
    }

    /// Worker body: blocks for the next job and processes it. Returns
    /// `false` once the queue is closed and drained.
    fn drain_blocking(&self) -> bool {
        match self.queue.pop() {
            Some(job) => {
                self.process(job);
                true
            }
            None => false,
        }
    }

    /// Synchronously processes one queued job if any — the no-sleep test
    /// hook. Returns `false` when the queue was empty.
    pub fn drain_one(&self) -> bool {
        match self.queue.try_pop() {
            Some(job) => {
                self.process(job);
                true
            }
            None => false,
        }
    }

    fn process(&self, job: Job) {
        let started_ms = self.clock.now_ms();
        let response = self.respond(&job, started_ms);
        self.metrics.search_latency.observe(
            (self.clock.now_ms() - started_ms) as f64 + (started_ms - job.enqueued_ms) as f64,
        );
        self.metrics
            .count_request(job.kind.endpoint(), response.status);
        job.sink.deliver(response);
    }

    /// Produces the response for one job: deadline check, degradation
    /// decision, parse, plan, adopt, serialize.
    fn respond(&self, job: &Job, now_ms: u64) -> HttpResponse {
        let parsed_deadline = match job.kind {
            JobKind::Plan => {
                serde_json::from_str::<PlanRequest>(&String::from_utf8_lossy(&job.body)).map(|r| {
                    let deadline = r.deadline_ms;
                    (Parsed::Plan(r), deadline)
                })
            }
            JobKind::Replan => serde_json::from_str::<ReplanRequest>(&String::from_utf8_lossy(
                &job.body,
            ))
            .map(|r| {
                let deadline = r.deadline_ms;
                (Parsed::Replan(r), deadline)
            }),
        };
        let (parsed, deadline_ms) = match parsed_deadline {
            Ok((parsed, deadline)) => (parsed, deadline.unwrap_or(self.config.default_deadline_ms)),
            Err(e) => {
                return error_response(400, "bad_request", format!("invalid request body: {e}"))
            }
        };

        let waited_ms = now_ms.saturating_sub(job.enqueued_ms);
        if waited_ms >= deadline_ms {
            self.metrics.count_rejection("deadline");
            return error_response(
                503,
                "deadline_expired",
                format!("request waited {waited_ms} ms against a {deadline_ms} ms deadline"),
            )
            .with_retry_after(1);
        }
        // Deadline-pressed: not enough budget left for a beam search, so
        // degrade to the greedy chain instead of erroring later.
        let degrade = deadline_ms - waited_ms < self.config.degrade_below_ms;

        // Cache lookup happens only after the deadline check: an expired
        // request answers 503 whether or not its twin is cached — the
        // shed/degrade semantics are identical with the cache on or off.
        let cache_key = self.response_cache.as_ref().map(|_| {
            response_cache_key(
                job.kind,
                degrade,
                self.cache_generation(job.kind),
                &job.body,
            )
        });
        if let (Some(cache), Some(key)) = (&self.response_cache, cache_key) {
            if let Some(hit) = cache.lock().expect("cache poisoned").get(key) {
                self.metrics.response_cache_hits.inc();
                return hit;
            }
            self.metrics.response_cache_misses.inc();
        }

        let response = match parsed {
            Parsed::Plan(request) => self.respond_plan(request, degrade),
            Parsed::Replan(request) => self.respond_replan(request, degrade),
        };
        if let (Some(cache), Some(key)) = (&self.response_cache, cache_key) {
            if response.status == 200 {
                cache
                    .lock()
                    .expect("cache poisoned")
                    .put(key, response.clone());
            }
        }
        response
    }

    /// Stamps failover attribution onto new plans produced after this
    /// node promoted itself — every plan records *which* node took over,
    /// at what sequence, and whether it was known stale.
    fn attribute_failover(
        &self,
        provenance: nshard_core::PlanProvenance,
    ) -> nshard_core::PlanProvenance {
        match self.role.promoted_at() {
            Some(at_seq) => provenance.attributed_to_failover(
                self.config.replica.node.clone(),
                at_seq,
                self.role.stale(),
            ),
            None => provenance,
        }
    }

    /// Adopts into the plan store and, when the adoption is new, appends
    /// it to the replication log as a create-only (`MatchSeq::Exact(0)`)
    /// conditional upsert. A sequence conflict there means a concurrent
    /// identical adoption already logged it — counted, not an error.
    fn adopt_and_log(
        &self,
        id: &str,
        task: ShardingTask,
        plan: nshard_core::ShardingPlan,
        provenance: nshard_core::PlanProvenance,
        predicted_ms: f64,
        degraded: bool,
    ) -> Result<u64, StoreError> {
        let (stored, newly_adopted) =
            self.plans
                .adopt_new(id, task, plan, provenance, predicted_ms, degraded)?;
        if newly_adopted {
            let value = serde_json::to_string(&stored).unwrap_or_default();
            if self
                .kv
                .upsert(&plan_key(id), value, MatchSeq::Exact(0))
                .is_err()
            {
                self.metrics.seq_conflicts.inc();
            }
        }
        Ok(stored.version)
    }

    fn respond_plan(&self, request: PlanRequest, degrade: bool) -> HttpResponse {
        let output = match self.engine.plan(&request.task, degrade) {
            Ok(output) => output,
            Err(e) => return error_response(422, "infeasible", e.to_string()),
        };
        let provenance = self.attribute_failover(output.provenance);
        self.observe_outcome(&provenance, output.degraded);
        let version = if request.adopt {
            match self.adopt_and_log(
                &output.id,
                request.task,
                output.plan.clone(),
                provenance.clone(),
                output.predicted_ms,
                output.degraded,
            ) {
                Ok(version) => version,
                Err(e) => return error_response(500, "store_failed", e.to_string()),
            }
        } else {
            0
        };
        let body = PlanResponse {
            id: output.id,
            version,
            degraded: output.degraded,
            source: source_label(&provenance.source),
            predicted_ms: output.predicted_ms,
            plan: output.plan,
            provenance,
        };
        HttpResponse::json(200, serde_json::to_string(&body).unwrap_or_default())
    }

    fn respond_replan(&self, request: ReplanRequest, degrade: bool) -> HttpResponse {
        let incumbent = match &request.incumbent_id {
            Some(id) => self.plans.get(id),
            None => self.plans.latest(),
        };
        let Some(incumbent) = incumbent else {
            return error_response(
                404,
                "no_incumbent",
                match &request.incumbent_id {
                    Some(id) => format!("no stored plan with id {id}"),
                    None => "the store holds no plan to warm-start from".to_string(),
                },
            );
        };
        let re = match self.engine.replan(&request.task, &incumbent.plan, degrade) {
            Ok(re) => re,
            Err(e) => return error_response(422, "infeasible", e.to_string()),
        };
        let provenance = self.attribute_failover(re.output.provenance.clone());
        self.observe_outcome(&provenance, re.output.degraded);
        let version = if request.adopt {
            match self.adopt_and_log(
                &re.output.id,
                request.task,
                re.output.plan.clone(),
                provenance.clone(),
                re.output.predicted_ms,
                re.output.degraded,
            ) {
                Ok(version) => version,
                Err(e) => return error_response(500, "store_failed", e.to_string()),
            }
        } else {
            0
        };
        let body = ReplanResponse {
            id: re.output.id,
            version,
            degraded: re.output.degraded,
            source: source_label(&provenance.source),
            predicted_ms: re.output.predicted_ms,
            migration_bytes: re.migration_bytes,
            incremental: re.incremental,
            evaluated_plans: re.evaluated_plans as u64,
            plan: re.output.plan,
            provenance,
        };
        HttpResponse::json(200, serde_json::to_string(&body).unwrap_or_default())
    }

    /// Applies replicated ops through the sequence-gated KV and
    /// materializes newly applied plans into the local store — the
    /// follower ingest path. Returns how many ops actually applied.
    pub fn apply_replicated(&self, ops: Vec<LogOp>) -> usize {
        let mut applied = 0usize;
        for op in ops {
            for done in self.kv.apply(op) {
                applied += 1;
                self.materialize(&done.key, &done.value);
            }
        }
        applied
    }

    /// Replaces this replica's KV with a full snapshot and materializes
    /// every plan in it — the cold/lagging catch-up path.
    pub fn restore_snapshot(&self, snapshot: &KvSnapshot) {
        self.kv.restore(snapshot);
        for entry in &snapshot.entries {
            self.materialize(&entry.key, &entry.value);
        }
        self.metrics.snapshot_catchup.inc();
    }

    /// Materializes one replicated KV value into the typed stores.
    fn materialize(&self, key: &str, value: &str) {
        if key.strip_prefix("plans/").is_some() {
            if let Ok(record) = serde_json::from_str::<StoredPlan>(value) {
                // Persist errors surface via store metrics on the leader;
                // a replica keeps the in-memory copy serving either way.
                let _ = self.plans.insert_replica(record);
            }
        } else if key == MODEL_KEY {
            // A promoted cost-model bundle replicating from the leader:
            // swap it into this replica's engine so a failover promotes a
            // node already serving the fine-tuned models.
            if let Ok(envelope) = nshard_nn::serialize::envelope_from_json::<CostModelBundle>(value)
            {
                let version = self.engine.swap_bundle(envelope.payload);
                self.metrics.model_version.set(version);
            }
        }
    }

    /// Records the observed replication lag (sequence delta to the
    /// leader) in `/metrics`.
    pub fn note_replication_lag(&self, lag: u64) {
        self.metrics.replication_lag.set(lag);
    }

    /// Promotes this node to leader after failover detection — the store
    /// it caught up keeps serving, now accepting writes. `stale` marks
    /// degraded-mode reads (the dead leader was known to be ahead).
    pub fn promote(&self, at_seq: u64, stale: bool) {
        self.role.mark_promoted(at_seq, stale);
        self.metrics.replica_role.set(Role::Leader.gauge_value());
    }

    /// Moves a follower to candidate while failures accumulate (visible
    /// in the role gauge and `/v1/repl/status`).
    pub fn set_candidate_if_follower(&self) {
        if matches!(self.role.role(), Role::Follower) {
            self.role.set_role(Role::Candidate);
            self.metrics.replica_role.set(Role::Candidate.gauge_value());
        }
    }

    /// Drops a candidate back to follower once the leader answers again
    /// (a blip, not a death).
    pub fn reaffirm_follower(&self) {
        if matches!(self.role.role(), Role::Candidate) {
            self.role.set_role(Role::Follower);
            self.metrics.replica_role.set(Role::Follower.gauge_value());
        }
    }

    fn observe_outcome(&self, provenance: &nshard_core::PlanProvenance, degraded: bool) {
        if degraded {
            self.metrics.degraded.inc();
        }
        match &provenance.source {
            nshard_core::PlanSource::Repaired { .. } => self.metrics.repairs.inc(),
            nshard_core::PlanSource::Fallback { .. } | nshard_core::PlanSource::SizeBalanced => {
                self.metrics.fallbacks.inc()
            }
            nshard_core::PlanSource::Primary { .. } => {}
        }
    }

    /// The shared metrics registry — the event loop ([`crate::net`])
    /// registers its connection-level series here, so `/metrics` is one
    /// exposition for the whole daemon.
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.metrics.registry
    }

    /// Prometheus exposition: the registry plus prediction-cache gauges
    /// scraped live from the engine. The cache series carry a
    /// `model_version` label so dashboards can attribute hit-rate resets
    /// and cost shifts to a promotion event (a swap rebuilds the caches,
    /// so counts restart from zero under the new label).
    pub fn render_metrics(&self) -> String {
        let mut out = self.metrics.registry.render();
        let stats = self.engine.cache_stats();
        let version = self.engine.model_version();
        out.push_str(
            "# HELP nshard_serve_cache_hits_total Prediction-cache hits across all searches\n\
             # TYPE nshard_serve_cache_hits_total counter\n",
        );
        out.push_str(&format!(
            "nshard_serve_cache_hits_total{{model_version=\"{version}\"}} {}\n",
            stats.hits
        ));
        out.push_str(
            "# HELP nshard_serve_cache_misses_total Prediction-cache misses across all searches\n\
             # TYPE nshard_serve_cache_misses_total counter\n",
        );
        out.push_str(&format!(
            "nshard_serve_cache_misses_total{{model_version=\"{version}\"}} {}\n",
            stats.misses
        ));
        out
    }

    /// Stops admission and lets workers drain what was already accepted.
    pub fn close(&self) {
        self.queue.close();
    }
}

/// Result of routing one request.
pub enum Routed {
    /// Answered without queueing.
    Inline(HttpResponse),
    /// Admitted; the slot resolves when a worker finishes the job.
    Queued(Arc<ResponseSlot>),
}

fn error_response(status: u16, kind: &str, detail: String) -> HttpResponse {
    HttpResponse::json(status, ErrorBody::new(kind, detail).to_json())
}

/// The KV key under which an adopted plan replicates.
fn plan_key(id: &str) -> String {
    format!("plans/{id}")
}

/// The KV key under which the promoted cost-model bundle replicates.
/// A single key — promotion is last-writer-wins by design: the lifecycle
/// serializes promotions, and followers always want the newest bundle.
pub const MODEL_KEY: &str = "models/active";

/// A running daemon: accept path (event-driven reactor or the blocking
/// thread-per-connection reference, per [`ServeConfig::io_mode`]) plus
/// worker pool around a [`Service`].
pub struct Server {
    service: Arc<Service>,
    addr: std::net::SocketAddr,
    running: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    reactor: Option<Reactor>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept path and worker pool.
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener (or creating the reactor's poller
    /// and waker in [`IoMode::Event`]).
    pub fn start(service: Arc<Service>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));

        let worker_threads: Vec<JoinHandle<()>> = (0..service.workers())
            .map(|i| {
                let service = Arc::clone(&service);
                std::thread::Builder::new()
                    .name(format!("nshard-serve-worker-{i}"))
                    .spawn(move || while service.drain_blocking() {})
                    .expect("spawn worker")
            })
            .collect();

        let (accept_thread, reactor) = match service.config().io_mode {
            IoMode::Event => {
                let reactor = Reactor::spawn(Arc::clone(&service), listener)?;
                (None, Some(reactor))
            }
            IoMode::Blocking => {
                let service = Arc::clone(&service);
                let running = Arc::clone(&running);
                let handle = std::thread::Builder::new()
                    .name("nshard-serve-accept".into())
                    .spawn(move || {
                        for stream in listener.incoming() {
                            if !running.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(stream) = stream else { continue };
                            let service = Arc::clone(&service);
                            // One thread per connection: connections are
                            // short-lived (Connection: close) and the
                            // real concurrency limit is the bounded
                            // queue behind.
                            std::thread::spawn(move || handle_connection(&service, stream));
                        }
                    })
                    .expect("spawn accept loop");
                (Some(handle), None)
            }
        };

        Ok(Self {
            service,
            addr: local,
            running,
            accept_thread,
            worker_threads,
            reactor,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared service.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Graceful shutdown: stop accepting, drain the queue, join all
    /// threads. Everything already admitted still gets its response.
    pub fn shutdown(mut self) {
        self.running.store(false, Ordering::SeqCst);
        self.service.close();
        if let Some(reactor) = self.reactor.take() {
            reactor.shutdown();
        }
        // Self-connect to wake the blocking accept call.
        let _ = TcpStream::connect(self.addr).map(|mut s| s.write_all(b""));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Parsed request body, by endpoint.
enum Parsed {
    Plan(PlanRequest),
    Replan(ReplanRequest),
}

fn handle_connection(service: &Service, mut stream: TcpStream) {
    let response = match read_request(&mut stream) {
        Ok(request) => service.handle_blocking(&request),
        Err(HttpParseError::BodyTooLarge { declared }) => error_response(
            413,
            "body_too_large",
            format!("declared body of {declared} bytes exceeds the limit"),
        ),
        // Includes the zero-byte wake-up connection from shutdown.
        Err(_) => return,
    };
    let _ = response.write_to(&mut stream);
}
