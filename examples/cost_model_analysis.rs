//! Inspect the pre-trained neural cost models: accuracy against the
//! ground truth, the paper's three observations, and checkpointing.
//!
//! Run with:
//! ```sh
//! cargo run --release --example cost_model_analysis
//! ```

use neuroshard::cost::{
    table_features, CollectConfig, CostModelBundle, CostSimulator, TrainSettings,
};
use neuroshard::data::TablePool;
use neuroshard::sim::{GpuSpec, KernelParams, TableProfile};

fn main() {
    let pool = TablePool::synthetic_dlrm(856, 2023);
    let kernel = KernelParams::rtx_2080_ti();
    let batch = 65_536;

    // --- Observation 1: column-splitting costs more than half. ---
    println!("Observation 1 — the column-split penalty:");
    let table = TableProfile::new(128, 1 << 21, 15.0, 0.3, 1.05);
    let full = kernel.multi_cost_ms(&[table], batch);
    let (half, _) = table.split_columns().expect("dim 128 splits");
    let half_cost = kernel.multi_cost_ms(&[half], batch);
    println!(
        "  dim 128 costs {full:.3} ms; one dim-64 half costs {half_cost:.3} ms \
         ({:.0}% of the full table, not 50%)",
        half_cost / full * 100.0
    );

    // --- Observation 2: fusion non-linearity. ---
    let tables: Vec<TableProfile> = (0..10)
        .map(|i| TableProfile::new(if i % 2 == 0 { 64 } else { 32 }, 1 << 20, 12.0, 0.3, 1.0))
        .collect();
    let fused = kernel.multi_cost_ms(&tables, batch);
    let sum: f64 = tables
        .iter()
        .map(|t| kernel.multi_cost_ms(std::slice::from_ref(t), batch))
        .sum();
    println!("\nObservation 2 — fusion non-linearity:");
    println!(
        "  10-table fused kernel: {fused:.2} ms vs. sum of singles {sum:.2} ms \
         (fusion saves {:.0}%)",
        (1.0 - fused / sum) * 100.0
    );

    // --- Pre-train and check the learned model against the oracle. ---
    println!("\npre-training a computation cost model...");
    let bundle = CostModelBundle::pretrain(
        &pool,
        4,
        &CollectConfig {
            compute_samples: 5000,
            comm_samples: 2000,
            ..CollectConfig::default()
        },
        &TrainSettings::default(),
        11,
    );
    println!(
        "  held-out test MSE: {:.3} ms^2",
        bundle.report().compute_test_mse
    );

    println!("\nlearned model vs. ground truth on unseen combinations:");
    println!(
        "  {:>4} {:>12} {:>12} {:>8}",
        "T", "truth (ms)", "model (ms)", "err"
    );
    for t in [1usize, 3, 6, 10, 14] {
        let combo: Vec<TableProfile> = (0..t)
            .map(|i| {
                let dims = [4u32, 8, 16, 32, 64, 128];
                TableProfile::new(dims[i % 6], 1 << (16 + i % 8), 8.0 + i as f64, 0.3, 1.0)
            })
            .collect();
        let truth = kernel.multi_cost_ms(&combo, batch);
        let feats: Vec<Vec<f32>> = combo.iter().map(|p| table_features(p, batch)).collect();
        let pred = bundle.compute_model().predict(&feats);
        println!(
            "  {t:>4} {truth:>12.3} {pred:>12.3} {:>7.1}%",
            (pred - truth).abs() / truth * 100.0
        );
    }

    // --- The model as a plan simulator, with the life-long cache. ---
    let sim = CostSimulator::new(bundle);
    let t = |d| TableProfile::new(d, 1 << 20, 12.0, 0.3, 1.0);
    let plan = vec![
        vec![t(64), t(32)],
        vec![t(128)],
        vec![t(16), t(16)],
        vec![t(64)],
    ];
    let est = sim.estimate_plan(&plan);
    println!(
        "\nplan estimate: {:.2} ms (compute {:.2} + fwd comm {:.2} + bwd comm {:.2})",
        est.total_ms(),
        est.max_compute_ms,
        est.fwd_comm_ms,
        est.bwd_comm_ms
    );
    let _ = sim.estimate_plan(&plan); // cache-hot second call
    println!(
        "cache after two estimates: {} entries, hit rate {:.0}%",
        sim.cache().len(),
        sim.cache().hit_rate() * 100.0
    );

    // --- Checkpoint round-trip (deployment versioning, §3.2). ---
    let json = serde_json::to_string(sim.bundle()).expect("bundles serialize");
    println!(
        "\nserialized bundle checkpoint: {:.1} KB (JSON)",
        json.len() as f64 / 1024.0
    );
    let _restored: neuroshard::cost::CostModelBundle =
        serde_json::from_str(&json).expect("bundles deserialize");
    println!("checkpoint round-trip OK");

    // Use the GPU spec so the example also shows where the laws come from.
    let spec = GpuSpec::rtx_2080_ti();
    println!(
        "\ncluster spec: {:.0} GB embedding budget per GPU",
        spec.mem_budget_bytes() as f64 / 1e9
    );
}
