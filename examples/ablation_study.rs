//! Ablation study: what each NeuroShard component contributes — a
//! miniature of the paper's Table 3.
//!
//! Run with:
//! ```sh
//! cargo run --release --example ablation_study
//! ```

use neuroshard::core::{evaluate_plan, NeuroShard, NeuroShardConfig};
use neuroshard::cost::{CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{ShardingTask, TablePool};
use neuroshard::sim::GpuSpec;

fn main() {
    let pool = TablePool::synthetic_dlrm(856, 2023);
    let spec = GpuSpec::rtx_2080_ti();

    println!("pre-training cost models...");
    let bundle = CostModelBundle::pretrain(
        &pool,
        4,
        &CollectConfig {
            compute_samples: 4000,
            comm_samples: 3000,
            ..CollectConfig::default()
        },
        &TrainSettings::default(),
        21,
    );

    // The hardest setting: max table dimension 128.
    let tasks: Vec<ShardingTask> = (0..4)
        .map(|i| ShardingTask::sample(&pool, 4, 10..=60, 128, 400 + i))
        .collect();

    let full = NeuroShardConfig::default();
    let variants = [
        (
            "w/o beam search",
            NeuroShardConfig {
                use_beam: false,
                ..full
            },
        ),
        (
            "w/o greedy grid search",
            NeuroShardConfig {
                use_grid: false,
                ..full
            },
        ),
        (
            "w/o caching",
            NeuroShardConfig {
                use_cache: false,
                ..full
            },
        ),
        ("full NeuroShard", full),
    ];

    println!(
        "\n{:<24} {:>10} {:>9} {:>9} {:>10}",
        "variant", "cost (ms)", "success", "time (s)", "hit rate"
    );
    println!("{}", "-".repeat(68));
    for (name, config) in variants {
        let sharder = NeuroShard::new(bundle.clone(), config);
        let mut costs = Vec::new();
        let mut ok = 0;
        let mut time = 0.0;
        let mut hits = 0.0;
        for (i, task) in tasks.iter().enumerate() {
            if let Ok(outcome) = sharder.shard_with_stats(task) {
                time += outcome.sharding_time_s;
                hits += outcome.cache_hit_rate;
                if let Ok(real) = evaluate_plan(task, &outcome.plan, &spec, i as u64) {
                    ok += 1;
                    costs.push(real.max_total_ms());
                }
            }
        }
        let cost = if costs.is_empty() {
            "-".to_string()
        } else {
            format!("{:.2}", costs.iter().sum::<f64>() / costs.len() as f64)
        };
        println!(
            "{name:<24} {cost:>10} {:>6}/{:<2} {:>9.2} {:>9.0}%",
            ok,
            tasks.len(),
            time / tasks.len() as f64,
            hits / tasks.len() as f64 * 100.0
        );
    }
    println!(
        "\n(Expected: removing beam search costs success rate on big-table tasks;\n\
         removing grid search worsens cost; removing the cache slows sharding\n\
         dramatically with a 0% hit rate.)"
    );
}
