//! Online re-sharding under workload drift: the same deployment driven
//! through 20 drift epochs under three maintenance strategies —
//!
//! * **never replan** — ride the deploy-time plan through all drift,
//! * **full replan** — re-run the complete NeuroShard search on every
//!   drift trigger (best cost, most bytes moved),
//! * **incremental replan** — warm-start from the incumbent and apply a
//!   migration-aware local-move delta (near-full-replan cost, a fraction
//!   of the bytes).
//!
//! Run with:
//! ```sh
//! cargo run --release --example online_resharding
//! ```

use neuroshard::cost::{CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{ShardingTask, TablePool};
use neuroshard::online::{
    OnlineConfig, OnlineController, ReplanHistory, ReplanStrategy, WorkloadDrift,
};

fn run(bundle: &CostModelBundle, drift: &WorkloadDrift, strategy: ReplanStrategy) -> ReplanHistory {
    let config = OnlineConfig {
        epochs: 20,
        strategy,
        seed: 7,
        ..OnlineConfig::default()
    };
    OnlineController::new(bundle.clone(), drift.clone(), config)
        .run()
        .expect("the initial deployment is feasible")
}

fn main() {
    // 1. Pre-train the cost models once; they serve detection, the
    //    incremental planner and the full search alike.
    let pool = TablePool::synthetic_dlrm(856, 2023);
    println!("pre-training cost models for a 4-GPU cluster...");
    let bundle = CostModelBundle::pretrain(
        &pool,
        4,
        &CollectConfig {
            compute_samples: 2000,
            comm_samples: 1500,
            ..CollectConfig::default()
        },
        &TrainSettings::default(),
        42,
    );

    // 2. A deployment task and the drift trace it will live through:
    //    gradual growth + rotating hotspots + diurnal breathing + a
    //    sudden 3x traffic spike at epoch 10.
    let base = ShardingTask::sample(&pool, 4, 25..=35, 64, 7);
    println!(
        "deployment: {} tables, {:.2} GB of embeddings, {} GPUs, 20 drift epochs",
        base.num_tables(),
        base.total_bytes() as f64 / 1e9,
        base.num_devices()
    );
    let drift = WorkloadDrift::standard(base, 42);

    // 3. Drive the same deployment through the same drift under each
    //    strategy.
    let never = run(&bundle, &drift, ReplanStrategy::Never);
    let full = run(&bundle, &drift, ReplanStrategy::Full);
    let incremental = run(&bundle, &drift, ReplanStrategy::Incremental);

    // 4. Per-epoch ground-truth max-device cost (the paper's real-GPU
    //    metric; "-" marks a memory-infeasible epoch).
    println!("\nground-truth max-device cost per epoch (ms):");
    println!(
        "{:>5} {:>12} {:>12} {:>12}  trigger",
        "epoch", "never", "full", "incremental"
    );
    for e in 0..never.epochs.len() {
        let cell = |h: &ReplanHistory| {
            h.epochs[e]
                .ground_truth_ms
                .map_or_else(|| "-".to_string(), |c| format!("{c:.2}"))
        };
        let trigger = incremental.epochs[e]
            .report
            .as_ref()
            .and_then(|r| r.trigger.as_ref())
            .map_or("", |t| t.kind());
        println!(
            "{e:>5} {:>12} {:>12} {:>12}  {trigger}",
            cell(&never),
            cell(&full),
            cell(&incremental),
        );
    }

    // 5. The trade-off: cost held vs. bytes moved.
    println!("\nstrategy summary:");
    println!(
        "{:>12} {:>8} {:>14} {:>14} {:>16}",
        "strategy", "replans", "mean cost (ms)", "worst (ms)", "bytes moved"
    );
    for h in [&never, &full, &incremental] {
        println!(
            "{:>12} {:>8} {:>14.2} {:>14.2} {:>16}",
            h.strategy.name(),
            h.replans(),
            h.mean_ground_truth_ms(),
            h.worst_ground_truth_ms().unwrap_or(f64::NAN),
            h.total_migration_bytes(),
        );
    }
    let full_bytes = full.total_migration_bytes().max(1);
    println!(
        "\nincremental moved {:.1}% of the bytes of full replanning",
        incremental.total_migration_bytes() as f64 / full_bytes as f64 * 100.0
    );
}
