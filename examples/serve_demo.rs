//! Sharding-as-a-service demo: boot the `nshard-serve` daemon on a local
//! port and exercise every endpoint, or run the same flow as an
//! in-process smoke test.
//!
//! ```text
//! cargo run --release --example serve_demo            # serve on :7878 until Ctrl-C
//! cargo run --release --example serve_demo -- --smoke # one-shot self-test, then exit
//! ```
//!
//! With the daemon running, the README's curl walkthrough applies:
//!
//! ```text
//! curl -s localhost:7878/health
//! curl -s -X POST localhost:7878/v1/plan -d @task.json
//! curl -s localhost:7878/metrics
//! ```

use std::sync::Arc;

use neuroshard::cost::{CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{ShardingTask, TableConfig, TableId, TablePool};
use neuroshard::serve::{http_call, ServeConfig, Server, Service};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    eprintln!("pre-training cost models (smoke settings, ~seconds)...");
    let pool = TablePool::synthetic_dlrm(60, 7);
    let bundle = CostModelBundle::pretrain(
        &pool,
        2,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        7,
    );

    let config = ServeConfig::smoke();
    let service = Arc::new(Service::new(bundle, config).expect("service boots"));
    let addr = if smoke {
        "127.0.0.1:0"
    } else {
        "127.0.0.1:7878"
    };
    let server = Server::start(Arc::clone(&service), addr).expect("server binds");
    let addr = server.addr().to_string();
    eprintln!(
        "nshard-serve listening on {addr} ({} workers)",
        service.workers()
    );

    if !smoke {
        eprintln!("try: curl -s {addr}/health");
        eprintln!("     curl -s -X POST {addr}/v1/plan -d '{{\"task\":{{...}}}}'");
        eprintln!("     curl -s {addr}/metrics");
        // Serve until the process is killed.
        loop {
            std::thread::park();
        }
    }

    // --smoke: drive every endpoint once and verify the responses.
    let (status, body) = http_call(&addr, "GET", "/health", b"").expect("health");
    assert_eq!(status, 200, "health: {body}");
    println!("GET  /health          -> {status} {body}");

    let tables: Vec<TableConfig> = (0..8)
        .map(|i| TableConfig::new(TableId(i), 16 + 16 * (i % 2), 1 << 14, 8.0, 1.05))
        .collect();
    let task = ShardingTask::new(tables, 2, 1 << 30, 1024);
    let request = format!(
        "{{\"task\":{}}}",
        serde_json::to_string(&task).expect("tasks serialize")
    );

    let (status, body) = http_call(&addr, "POST", "/v1/plan", request.as_bytes()).expect("plan");
    assert_eq!(status, 200, "plan: {body}");
    let id = body
        .split("\"id\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("plan response carries an id")
        .to_string();
    println!(
        "POST /v1/plan         -> {status} (plan id {id}, {} bytes)",
        body.len()
    );

    let (status, body) =
        http_call(&addr, "GET", &format!("/v1/plans/{id}"), b"").expect("get plan");
    assert_eq!(status, 200, "get plan: {body}");
    println!("GET  /v1/plans/{{id}}   -> {status} ({} bytes)", body.len());

    let (status, body) =
        http_call(&addr, "POST", "/v1/replan", request.as_bytes()).expect("replan");
    assert_eq!(status, 200, "replan: {body}");
    assert!(body.contains("\"incremental\":true"), "replan: {body}");
    println!("POST /v1/replan       -> {status} (incremental, 0 bytes migrated)");

    let (status, metrics) = http_call(&addr, "GET", "/metrics", b"").expect("metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("nshard_serve_requests_total"));
    println!(
        "GET  /metrics         -> {status} ({} families)",
        metrics.lines().filter(|l| l.starts_with("# TYPE")).count()
    );

    server.shutdown();
    println!("smoke OK");
}
