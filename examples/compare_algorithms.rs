//! Compare NeuroShard against every baseline on a batch of sharding tasks
//! — a miniature of the paper's Table 1 protocol.
//!
//! Run with:
//! ```sh
//! cargo run --release --example compare_algorithms
//! ```

use neuroshard::baselines::{
    DimGreedy, LookupGreedy, RandomSharding, RlSharder, RlVariant, ShardingAlgorithm, SizeGreedy,
    SizeLookupGreedy, TorchRecLikePlanner,
};
use neuroshard::core::{evaluate_plan, NeuroShard, NeuroShardConfig};
use neuroshard::cost::{CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{ShardingTask, TablePool};
use neuroshard::sim::GpuSpec;

fn main() {
    let pool = TablePool::synthetic_dlrm(856, 2023);
    let spec = GpuSpec::rtx_2080_ti();
    let num_gpus = 4;
    let max_dim = 64;
    let num_tasks = 5;

    println!("pre-training cost models...");
    let bundle = CostModelBundle::pretrain(
        &pool,
        num_gpus,
        &CollectConfig {
            compute_samples: 4000,
            comm_samples: 3000,
            ..CollectConfig::default()
        },
        &TrainSettings::default(),
        1,
    );
    let neuroshard = NeuroShard::new(bundle, NeuroShardConfig::default());

    let tasks: Vec<ShardingTask> = (0..num_tasks)
        .map(|i| ShardingTask::sample(&pool, num_gpus, 10..=60, max_dim, 50 + i))
        .collect();

    let algos: Vec<Box<dyn ShardingAlgorithm>> = vec![
        Box::new(RandomSharding::new(0)),
        Box::new(SizeGreedy),
        Box::new(DimGreedy),
        Box::new(LookupGreedy),
        Box::new(SizeLookupGreedy),
        Box::new(RlSharder::new(RlVariant::AutoShardLike, 0)),
        Box::new(RlSharder::new(RlVariant::DreamShardLike, 0)),
        Box::new(TorchRecLikePlanner::default()),
    ];

    println!("\n{num_tasks} tasks, {num_gpus} GPUs, max table dimension {max_dim}:\n");
    println!("{:<22} {:>12} {:>10}", "method", "cost (ms)", "success");
    println!("{}", "-".repeat(46));
    for algo in &algos {
        report(algo.as_ref(), &tasks, &spec);
    }
    report(&neuroshard, &tasks, &spec);
    println!(
        "\n(Lower is better; 'oom' marks plans that overflow a device's 4 GB budget —\n\
         the failure mode that motivates NeuroShard's column-wise sharding.)"
    );
}

fn report(algo: &dyn ShardingAlgorithm, tasks: &[ShardingTask], spec: &GpuSpec) {
    let mut costs = Vec::new();
    let mut failures = 0;
    for (i, task) in tasks.iter().enumerate() {
        match algo
            .shard(task)
            .ok()
            .and_then(|p| evaluate_plan(task, &p, spec, i as u64).ok())
        {
            Some(c) => costs.push(c.max_total_ms()),
            None => failures += 1,
        }
    }
    let cost = if costs.is_empty() {
        "oom".to_string()
    } else {
        format!("{:.2}", costs.iter().sum::<f64>() / costs.len() as f64)
    };
    println!(
        "{:<22} {:>12} {:>7}/{}",
        algo.name(),
        cost,
        tasks.len() - failures,
        tasks.len()
    );
}
