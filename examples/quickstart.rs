//! Quickstart: pre-train cost models, search for a sharding plan, and
//! evaluate it on the ground-truth cluster — the full "pre-train, and
//! search" loop in one file.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use neuroshard::core::{evaluate_plan, NeuroShard, NeuroShardConfig};
use neuroshard::cost::{CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{ShardingTask, TablePool};
use neuroshard::sim::GpuSpec;

fn main() {
    // 1. The table pool — the stand-in for the public DLRM benchmark
    //    dataset (856 tables with production-like statistics).
    let pool = TablePool::synthetic_dlrm(856, 2023);
    println!(
        "table pool: {} tables, avg hash size {:.0} rows, avg pooling factor {:.1}",
        pool.len(),
        pool.stats().avg_hash_size,
        pool.stats().avg_pooling_factor
    );

    // 2. Pre-train the three neural cost models (computation + fwd/bwd
    //    communication) from micro-benchmarks against the GPU simulator.
    //    This is the once-for-all step: the same bundle serves every
    //    sharding task on this cluster configuration.
    println!("\npre-training cost models for a 4-GPU cluster...");
    let bundle = CostModelBundle::pretrain(
        &pool,
        4,
        &CollectConfig {
            compute_samples: 4000,
            comm_samples: 3000,
            ..CollectConfig::default()
        },
        &TrainSettings::default(),
        42,
    );
    println!(
        "  test MSE: compute {:.3}, fwd comm {:.3}, bwd comm {:.3} (ms^2)",
        bundle.report().compute_test_mse,
        bundle.report().fwd_comm_test_mse,
        bundle.report().bwd_comm_test_mse
    );

    // 3. Build the sharder with the paper's search hyperparameters
    //    (N = 10, K = 3, L = 10, M = 11).
    let sharder = NeuroShard::new(bundle, NeuroShardConfig::default());

    // 4. A sharding task: 10-60 random tables with dimensions up to 128,
    //    onto 4 GPUs with 4 GB of embedding memory each.
    let task = ShardingTask::sample(&pool, 4, 10..=60, 128, 7);
    println!(
        "\ntask: {} tables, {:.2} GB of embeddings, {} GPUs",
        task.num_tables(),
        task.total_bytes() as f64 / 1e9,
        task.num_devices()
    );

    // 5. Search. The outcome carries the plan plus search telemetry.
    let outcome = sharder
        .shard_with_stats(&task)
        .expect("the benchmark tasks are feasible for NeuroShard");
    println!(
        "plan: {} column-wise splits, estimated cost {:.2} ms, found in {:.2}s \
         (cache hit rate {:.1}%)",
        outcome.plan.num_column_splits(),
        outcome.estimated_cost_ms,
        outcome.sharding_time_s,
        outcome.cache_hit_rate * 100.0
    );

    // 6. Evaluate on the ground-truth cluster (the paper's "collect real
    //    costs from GPUs" step) and compare per-device balance.
    let costs = evaluate_plan(&task, &outcome.plan, &GpuSpec::rtx_2080_ti(), 0)
        .expect("plan fits in memory");
    println!(
        "\nreal embedding cost: {:.2} ms (max across devices)",
        costs.max_total_ms()
    );
    for (g, dev) in costs.devices().iter().enumerate() {
        println!(
            "  GPU {g}: compute {:.2} ms, comm {:.2} ms, total {:.2} ms",
            dev.compute_ms(),
            dev.comm_ms(),
            dev.total_ms()
        );
    }
    println!("balance (min/max): {:.3}", costs.balance());
}
