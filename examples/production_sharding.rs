//! Production-scale sharding: place a multi-terabyte DLRM's embedding
//! tables onto a 128-GPU RDMA cluster and measure the end-to-end training
//! throughput — a miniature of the paper's Table 4 deployment.
//!
//! Run with:
//! ```sh
//! cargo run --release --example production_sharding
//! ```

use neuroshard::baselines::{DimGreedy, ShardingAlgorithm};
use neuroshard::core::{evaluate_plan, NeuroShard, NeuroShardConfig};
use neuroshard::cost::{CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{ShardingTask, TablePool};
use neuroshard::sim::{Cluster, GpuSpec, TraceSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let num_gpus = 128;
    let spec = GpuSpec::datacenter();

    // An ultra-large production model: ~600 tables, terabyte-scale.
    let pool = TablePool::synthetic_production(600, 9);
    let mut rng = StdRng::seed_from_u64(9);
    let dims = [16u32, 32, 64, 64, 128];
    let tables: Vec<_> = pool
        .iter()
        .map(|t| t.with_dim(dims[rng.random_range(0..dims.len())]))
        .collect();
    let task = ShardingTask::new(tables, num_gpus, spec.mem_budget_bytes(), 65_536);
    println!(
        "production model: {} tables, {:.2} TB of embeddings, {num_gpus} GPUs",
        task.num_tables(),
        task.total_bytes() as f64 / 1e12
    );

    println!("\npre-training cost models on the production cluster laws...");
    let bundle = CostModelBundle::pretrain_with_spec(
        &pool,
        num_gpus,
        &spec,
        &CollectConfig {
            compute_samples: 4000,
            comm_samples: 2500,
            placement_tables: Some((300, 700)),
            ..CollectConfig::default()
        },
        &TrainSettings::default(),
        3,
    );

    let neuroshard = NeuroShard::new(bundle, NeuroShardConfig::default());
    println!("searching (beam over column-wise plans, grid over max device dim)...");
    let outcome = neuroshard
        .shard_with_stats(&task)
        .expect("production task is feasible with column-wise sharding");
    println!(
        "NeuroShard: {} column splits, sharding took {:.1}s",
        outcome.plan.num_column_splits(),
        outcome.sharding_time_s
    );

    // Compare against dimension-greedy on embedding cost and throughput.
    let greedy_plan = DimGreedy
        .shard(&task)
        .expect("greedy always returns a plan");
    for (name, plan) in [("neuroshard", &outcome.plan), ("dim_greedy", &greedy_plan)] {
        match evaluate_plan(&task, plan, &spec, 1) {
            Ok(costs) => {
                let cluster = Cluster::new(
                    spec.with_mem_budget(task.mem_budget_bytes()),
                    num_gpus,
                    task.batch_size(),
                );
                let trace = TraceSimulator::new(cluster, 30.0)
                    .simulate(&plan.device_profiles(task.batch_size()), 20)
                    .expect("plan fits");
                println!(
                    "{name:12} embedding cost {:7.2} ms | iteration {:7.2} ms | \
                     {:9.0} samples/s | max idle {:6.2} ms",
                    costs.max_total_ms(),
                    trace.iteration_ms,
                    trace.throughput_samples_per_sec,
                    trace.max_idle_ms
                );
            }
            Err(e) => println!("{name:12} failed: {e}"),
        }
    }
}
