//! Replicated-serve demo: a two-node plan control plane over real TCP —
//! a leader and a follower tailing its op log — followed by a live
//! leader kill and warm follower promotion.
//!
//! ```text
//! cargo run --release --example replicated_serve            # full narrated run
//! cargo run --release --example replicated_serve -- --smoke # same flow, CI greps the output
//! ```
//!
//! The flow mirrors the README's multi-node quickstart: boot both nodes,
//! plan on the leader, watch the follower catch up byte-identically,
//! shut the leader down, and watch the follower promote itself and keep
//! answering — reads warm from its replicated store, writes attributed
//! to the failover in provenance.

use std::sync::Arc;

use neuroshard::cost::{CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{ShardingTask, TableConfig, TableId, TablePool};
use neuroshard::serve::{
    http_call, HttpTransport, PollOutcome, ReplicaConfig, Replicator, ServeConfig, Server, Service,
};

fn bundle(seed: u64) -> CostModelBundle {
    let pool = TablePool::synthetic_dlrm(60, 7);
    CostModelBundle::pretrain(
        &pool,
        2,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        seed,
    )
}

fn task_body(salt: u32) -> String {
    let tables: Vec<TableConfig> = (0..8)
        .map(|i| TableConfig::new(TableId(i), 16 + 16 * ((i + salt) % 4), 1 << 14, 8.0, 1.05))
        .collect();
    let task = ShardingTask::new(tables, 2, 1 << 30, 1024);
    serde_json::to_string(&task).expect("tasks serialize")
}

fn task_request(salt: u32) -> String {
    format!("{{\"task\":{}}}", task_body(salt))
}

fn main() {
    // --smoke only trims the narration; the flow is identical either way.
    let _smoke = std::env::args().any(|a| a == "--smoke");

    eprintln!("pre-training cost models (smoke settings, ~seconds)...");
    let seed = 7;

    // Node 0: the leader.
    let leader_service =
        Arc::new(Service::new(bundle(seed), ServeConfig::smoke()).expect("leader boots"));
    let leader_server = Server::start(Arc::clone(&leader_service), "127.0.0.1:0").expect("binds");
    let leader_addr = leader_server.addr().to_string();
    println!("leader  node-0 on {leader_addr} -> role leader");

    // Node 1: a follower tailing node-0 over real TCP.
    let mut follower_config = ServeConfig::smoke();
    follower_config.replica = ReplicaConfig {
        node: "node-1".into(),
        follower: true,
        failure_threshold: 3,
        ..ReplicaConfig::default()
    };
    let follower_service =
        Arc::new(Service::new(bundle(seed), follower_config).expect("follower boots"));
    let follower_server =
        Server::start(Arc::clone(&follower_service), "127.0.0.1:0").expect("binds");
    let follower_addr = follower_server.addr().to_string();
    let mut repl = Replicator::new(
        Arc::clone(&follower_service),
        Box::new(HttpTransport::new(leader_addr.clone())),
    );
    println!("follower node-1 on {follower_addr} -> tailing {leader_addr}");

    // Followers refuse planning writes.
    let (status, body) = http_call(
        &follower_addr,
        "POST",
        "/v1/plan",
        task_request(0).as_bytes(),
    )
    .expect("post");
    assert_eq!(status, 503, "follower rejects writes: {body}");
    println!("POST follower /v1/plan -> {status} (not_leader)");

    // Plan twice on the leader.
    let mut plan_ids = Vec::new();
    for salt in [0, 1] {
        let (status, body) = http_call(
            &leader_addr,
            "POST",
            "/v1/plan",
            task_request(salt).as_bytes(),
        )
        .expect("plan");
        assert_eq!(status, 200, "plan: {body}");
        let id = body
            .split("\"id\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("plan response carries an id")
            .to_string();
        println!("POST leader /v1/plan -> {status} (plan id {id})");
        plan_ids.push(id);
    }

    // The follower tails the log until it is caught up.
    loop {
        match repl.poll_once() {
            PollOutcome::Applied(n) => println!("replicated {n} op(s) to node-1"),
            PollOutcome::UpToDate => break,
            other => panic!("unexpected replication outcome: {other:?}"),
        }
    }
    assert_eq!(
        follower_service.kv().digest(),
        leader_service.kv().digest(),
        "replica stores must converge byte-identically"
    );
    println!("follower caught up (store digests match)");

    // Both nodes answer the same plan bytes.
    for id in &plan_ids {
        let (ls, lbody) =
            http_call(&leader_addr, "GET", &format!("/v1/plans/{id}"), b"").expect("leader get");
        let (fs, fbody) = http_call(&follower_addr, "GET", &format!("/v1/plans/{id}"), b"")
            .expect("follower get");
        assert_eq!((ls, fs), (200, 200));
        assert_eq!(lbody, fbody, "replicated plan bytes differ");
    }
    println!("GET /v1/plans/{{id}} identical on both nodes");

    // Kill the leader mid-tier.
    leader_server.shutdown();
    println!("leader node-0 killed");

    // The follower's polls now fail; at the threshold it promotes itself.
    loop {
        match repl.poll_once() {
            PollOutcome::TransportError {
                consecutive,
                backoff_ms,
            } => println!("poll failed ({consecutive} consecutive, next in {backoff_ms} ms)"),
            PollOutcome::Promoted { at_seq, stale } => {
                println!("follower promoted to leader at seq {at_seq} (stale: {stale})");
                break;
            }
            other => panic!("unexpected outcome during outage: {other:?}"),
        }
    }
    assert!(follower_service.role().is_leader());

    // Warm reads survive the failover...
    let (status, _) = http_call(
        &follower_addr,
        "GET",
        &format!("/v1/plans/{}", plan_ids[0]),
        b"",
    )
    .expect("warm read");
    assert_eq!(status, 200);
    println!("GET  survivor /v1/plans/{{id}} -> {status} (warm)");

    // ...and the survivor accepts writes, attributing the failover.
    let request = format!(
        "{{\"task\":{},\"incumbent_id\":\"{}\"}}",
        task_body(2),
        plan_ids[0]
    );
    let (status, body) =
        http_call(&follower_addr, "POST", "/v1/replan", request.as_bytes()).expect("replan");
    assert_eq!(status, 200, "survivor replan: {body}");
    assert!(
        body.contains("\"failover\":{\"node\":\"node-1\""),
        "failover attribution missing: {body}"
    );
    println!("POST survivor /v1/replan -> {status} (failover attributed to node-1)");

    follower_server.shutdown();
    println!("replication smoke OK");
}
