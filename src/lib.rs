//! # NeuroShard — pre-train and search for embedding table sharding
//!
//! A Rust reproduction of *"Pre-train and Search: Efficient Embedding Table
//! Sharding with Pre-trained Neural Cost Models"* (Zha et al., MLSys 2023).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`sim`] — deterministic GPU execution simulator (ground-truth oracle).
//! * [`data`] — synthetic DLRM table pool and sharding-task generation.
//! * [`nn`] — minimal dense neural-network library (MLP + Adam + MSE).
//! * [`cost`] — the pre-trained neural cost models and data collection.
//! * [`core`] — the NeuroShard online search (beam + greedy grid search).
//! * [`baselines`] — every comparator of the paper's Table 1 / Table 4.
//! * [`online`] — workload drift, drift detection and migration-aware
//!   incremental re-sharding (the deployed-plan maintenance loop).
//! * [`serve`] — sharding-as-a-service daemon: HTTP/1.1 JSON API with
//!   admission control, a versioned plan/model store, and `/metrics`.
//! * [`learn`] — continual learning: observation buffering, drift-triggered
//!   fine-tuning and the versioned promote-or-rollback model lifecycle.
//!
//! See the repository README for a quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use neuroshard::prelude::*;
//!
//! // 1. A synthetic table pool (the paper's DLRM dataset stand-in).
//! let pool = TablePool::synthetic_dlrm(16, 0xD15EA5E);
//!
//! // 2. A tiny sharding task: place 8 tables onto 2 GPUs.
//! let task = ShardingTask::sample(&pool, 2, 8..=8, 64, 0x5EED);
//!
//! // 3. Shard with a heuristic baseline (no pre-training needed here).
//! let plan = nshard_baselines::greedy::DimGreedy.shard(&task).unwrap();
//! assert_eq!(plan.num_devices(), 2);
//! ```

#![forbid(unsafe_code)]

pub use nshard_baselines as baselines;
pub use nshard_core as core;
pub use nshard_cost as cost;
pub use nshard_data as data;
pub use nshard_learn as learn;
pub use nshard_nn as nn;
pub use nshard_online as online;
pub use nshard_serve as serve;
pub use nshard_sim as sim;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use nshard_baselines::ShardingAlgorithm;
    pub use nshard_core::{FallbackChain, NeuroShard, NeuroShardConfig, ShardingPlan};
    pub use nshard_cost::{CostModelBundle, CostSimulator};
    pub use nshard_data::{ShardingTask, TablePool};
    pub use nshard_online::{
        OnlineConfig, OnlineController, PlanDelta, ReplanHistory, ReplanStrategy, WorkloadDrift,
    };
    pub use nshard_serve::{ServeConfig, Server, Service};
    pub use nshard_sim::{Cluster, Fault, FaultPlan, FaultyCluster, GpuSpec, TableProfile};
}

/// Resilience: fault injection, plan repair and graceful degradation.
///
/// Re-exports the fault layer of [`nshard_sim`] and the repair / fallback
/// machinery of [`nshard_core`], plus the wired-up default chain used in
/// chaos testing.
pub mod resilient {
    pub use nshard_core::{
        size_balanced_plan, FallbackChain, PlanProvenance, PlanSource, ProvenanceEvent,
        RepairConfig, RepairEngine, RepairReport, RepairStep, ResilientError, ResilientOutcome,
        RetryPolicy,
    };
    pub use nshard_sim::{Fault, FaultPlan, FaultyCluster};

    use nshard_baselines::SizeGreedy;
    use nshard_core::{NeuroShard, NeuroShardConfig};
    use nshard_cost::CostModelBundle;

    /// The default degradation chain: NeuroShard search, repaired
    /// NeuroShard plan, size-greedy baseline, size-balanced placement.
    pub fn default_chain(bundle: CostModelBundle, config: NeuroShardConfig) -> FallbackChain {
        FallbackChain::new(Box::new(NeuroShard::new(bundle, config)))
            .with_fallback(Box::new(SizeGreedy))
    }
}
